"""Persistent execution runtime: a shared worker pool for all fused plans.

The parallel driver in :mod:`repro.engine.parallel` creates a fresh
``ProcessPoolExecutor`` per call: every plan execution pays worker spawn plus
a full re-ship of the data, which is why the process backend stays
spawn-dominated at interactive scale (see ``BENCH_priors.json``).  High-rate
scanners avoid exactly this trap -- ZMap/LZR keep long-lived workers over a
partitioned address space and stream work *to* the data.  The
:class:`EngineRuntime` applies the same architecture to the engine's query
plans:

* **one pool, many plans** -- workers start once per runtime and execute
  every subsequent plan (:class:`~repro.engine.fused.FusedJoinPlan`,
  :class:`~repro.engine.fused.FusedPartnerPlan`,
  :class:`~repro.engine.fused.FusedArgmaxPlan`) without respawning;
* **sharded residency** -- dictionary-encoded column payloads
  (:mod:`repro.engine.shard`) load into workers once, each worker holding its
  shard resident, so repeated builds against the same data (model -> priors
  -> prediction index in one GPS run) ship only the plan parameters, never
  the columns;
* **one dispatch protocol** -- the ``serial``, ``thread`` and ``pool``
  executors implement the same :class:`Executor` interface, so callers pick
  a backend by name and results are bit-identical across all three (the
  equivalence suites assert it).

Workers are plain interpreter processes started with the ``spawn`` method
(fork-safety on 3.12+, identical behaviour on 3.10-3.12); each owns a
dedicated inbox queue so shard ``s`` tasks always route to the worker holding
shard ``s``, and a dedicated single-writer reply pipe back to the
coordinator.  Per-worker reply pipes (rather than one shared reply queue)
are what makes crashes *containable*: a queue shared by every worker is
guarded by a cross-process write lock, and a worker that dies while its
feeder thread holds that lock leaves it locked forever -- silently wedging
every survivor's replies.  A single-writer pipe needs no lock and no feeder
thread, so a dying worker can only ever poison its own channel, which
recovery discards and replaces along with the process.  Tasks are named
entries in a module-level registry -- messages carry names and plain data,
never pickled callables.

Lifecycle is explicit: :meth:`EngineRuntime.close` (idempotent) terminates
the pool and the runtime is a context manager.  The pool is *self-healing*:
the coordinator keeps a copy of every resident payload, so when liveness
polling finds a dead worker mid-request the supervisor respawns the process,
re-loads exactly the shards that worker's placement owned, re-dispatches only
the outstanding tasks (tasks are pure and loads are idempotent), and retries
under a bounded budget with exponential backoff.  Only an exhausted budget
surfaces as :class:`WorkerCrashError`; a wedged-but-alive worker is caught by
the optional per-task / per-execution deadlines as :class:`WorkerTimeoutError`
with a process dump.  Every supervision step emits a structured
:class:`RuntimeEvent` on the module-level :data:`RUNTIME_EVENT_BUS`; a
default sink forwards each event to the ``repro.engine.runtime`` logger
(silent unless a handler is attached), and other consumers -- the CLI's
``--verbose-runtime`` printer, test captures -- subscribe the same stream.
An optional :class:`~repro.telemetry.Telemetry` instance adds quantitative
instrumentation on top: per-task dispatch/queue/execute latency histograms,
crash/respawn/redispatch counters mirroring :class:`RecoveryStats`, and
resident-payload gauges.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.columns import ColumnView
from repro.engine.faults import FaultPlan, WorkerFaultState
from repro.engine.fused import (
    count_join_chunk,
    count_partner_chunk,
    fold_model_pairs_arrays,
    fold_value_counts_arrays,
    select_argmax_chunk,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.events import EventBus

__all__ = [
    "EngineRuntime",
    "RUNTIME_EVENT_BUS",
    "RUNTIME_EXECUTORS",
    "RecoveryStats",
    "RuntimeEvent",
    "WorkerCrashError",
    "WorkerTaskError",
    "WorkerTimeoutError",
    "default_worker_count",
    "lpt_placement",
]

#: The default event sink forwards to this logger; no handler is attached
#: by default, so production runs stay silent unless an operator opts in.
_LOGGER = logging.getLogger("repro.engine.runtime")

#: Every structured supervision event publishes here.  The logger sink
#: below is subscribed at import, preserving the historical behaviour
#: (events reach ``repro.engine.runtime`` at INFO); further sinks -- the
#: CLI's ``--verbose-runtime`` printer, test captures -- subscribe the same
#: stream instead of growing parallel logging paths.
RUNTIME_EVENT_BUS = EventBus()

#: Executor backends an :class:`EngineRuntime` can run plans on.
RUNTIME_EXECUTORS = ("serial", "thread", "pool")

#: Packing base for the resident model fold: group keys are
#: ``(predictor id, target port)`` pairs and ports are < 65536, so
#: ``pid * 65536 + port`` is bijective and the packed counter unpacks
#: losslessly (see :func:`repro.engine.fused.packing_base`).
MODEL_PACK_BASE = 65536


def default_worker_count() -> int:
    """Default pool size: the machine's cores, capped at 4.

    The engine's folds are memory-bandwidth-light and the cap keeps the
    default footprint modest; callers with bigger machines raise
    ``num_workers`` explicitly.
    """
    return max(1, min(4, os.cpu_count() or 1))


def lpt_placement(sizes: Sequence[int], workers: int) -> List[int]:
    """Greedy least-loaded (LPT) shard placement: ``sizes[s] -> worker id``.

    Shards are visited largest first and each goes to the worker with the
    smallest load so far -- the classic longest-processing-time heuristic,
    within 4/3 of the optimal makespan.  Fully deterministic: equal sizes
    visit in shard order and load ties resolve to the lowest worker id, so
    the placement is a pure function of ``(sizes, workers)``.  With one
    shard per worker and equal sizes it degenerates to the identity
    (shard ``s`` on worker ``s``), the historical ``s % workers`` layout.

    Placement only decides *where* a shard lives; results never depend on
    it -- counter folds merge order-independently and order-sensitive
    outputs are reassembled by original index
    (:func:`repro.engine.shard.merge_ordered`).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    placement = [0] * len(sizes)
    loads = [0] * workers
    worker_range = range(workers)
    for shard_idx in sorted(range(len(sizes)), key=lambda s: (-sizes[s], s)):
        worker = min(worker_range, key=loads.__getitem__)
        placement[shard_idx] = worker
        loads[worker] += sizes[shard_idx]
    return placement


def _payload_rows(payload: Any) -> int:
    """A shard payload's row count: total entries across its columns.

    The LPT placement's size measure.  Columns may be boxed lists/tuples,
    machine-native buffers (:class:`~repro.engine.columns.IntColumn`) or
    mmap-backed views; snapshot file references
    (:class:`~repro.engine.snapshot.ShardFileRef`) report their manifest
    ``rows`` without opening a file.  Offset columns count too, but they are
    proportional to the member count, so relative shard weights -- all
    placement cares about -- are preserved.
    """
    if not isinstance(payload, dict):
        return payload.rows
    return sum(len(column) for column in payload.values()
               if isinstance(column, (list, tuple, array, ColumnView)))


def _payload_nbytes(payload: Any) -> int:
    """Estimated resident size of one payload, in bytes.

    Machine-native buffers and snapshot file references report exactly;
    boxed lists/tuples count 8 bytes per element (the pointer) -- the
    estimate feeds an operator gauge, not an allocator, so relative
    magnitude is what matters.
    """
    if not isinstance(payload, dict):
        return payload.nbytes
    total = 0
    for column in payload.values():
        if isinstance(column, ColumnView):
            total += column.nbytes
        elif isinstance(column, array):
            total += len(column) * column.itemsize
        elif isinstance(column, (list, tuple)):
            total += len(column) * 8
    return total


def _resolve_payload(payload: Any) -> dict:
    """Materialize a load message's payload in the receiving worker.

    Dict payloads (the queue-ship path) pass through untouched.  Snapshot
    file references (:class:`~repro.engine.snapshot.ShardFileRef` -- any
    payload exposing ``open()``) resolve by mapping their column files into
    *this* process's address space: the zero-copy half of the snapshot
    story, where the coordinator ships a few-hundred-byte descriptor and the
    kernel page cache serves the actual columns to every worker that maps
    the same files.
    """
    if isinstance(payload, dict):
        return payload
    return payload.open()


def _queued_shard_bytes(payload: Any) -> int:
    """Column bytes one shard-load message ships through an inbox queue.

    The zero-reship ledger (:attr:`RecoveryStats.shard_bytes_queued`): dict
    payloads pickle their full column buffers into the pipe, file references
    ship only the descriptor -- the observable difference between queue-ship
    and mmap loading that the resize/recovery assertions are built on.
    """
    return _payload_nbytes(payload) if isinstance(payload, dict) else 0


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; carries the worker-side traceback."""


class WorkerCrashError(RuntimeError):
    """Worker death(s) exhausted the recovery budget; the pool is gone."""


class WorkerTimeoutError(RuntimeError):
    """A deadline expired while replies were outstanding; carries a dump."""


@dataclass(frozen=True)
class RuntimeEvent:
    """One structured supervision event (logged, never raised).

    Everything an operator needs to see *which* shard/task/worker failed:
    the event kind (``task_error``, ``worker_crash``, ``respawn``,
    ``reload``, ``redispatch``, ``retry_backoff``, ``timeout``), the worker
    involved, the task name plus resident ``(key, shard_idx)`` routing when
    the event concerns a task, the process exit code for crashes, and a
    free-form detail string (worker-side tracebacks travel here).
    """

    kind: str
    worker_id: Optional[int] = None
    task: Optional[str] = None
    key: Any = None
    shard_idx: Optional[int] = None
    exit_code: Optional[int] = None
    attempt: Optional[int] = None
    detail: str = ""


def _log_event(event: RuntimeEvent) -> None:
    """Default bus sink: forward every event to the module logger."""
    _LOGGER.info("%s", event)


RUNTIME_EVENT_BUS.subscribe(_log_event)


def _emit(event: RuntimeEvent) -> None:
    RUNTIME_EVENT_BUS.publish(event)


@dataclass
class RecoveryStats:
    """Counters the supervisor increments; tests assert recovery was surgical.

    ``reloaded_shards`` counting only the dead worker's shards (never the
    whole key) is the observable difference between in-place recovery and a
    full pool rebuild.  ``shard_bytes_queued`` is the zero-copy ledger:
    every column byte a shard-load message pickles through an inbox queue
    counts here (snapshot file references count zero -- workers map their
    own files), so "resize after a snapshot load re-ships zero shard bytes"
    is a counter assertion, not a claim.
    """

    crashes_detected: int = 0
    respawns: int = 0
    reloaded_shards: int = 0
    reloaded_broadcasts: int = 0
    redispatched_tasks: int = 0
    retry_rounds: int = 0
    resizes: int = 0
    migrated_shards: int = 0
    shard_bytes_queued: int = 0


# -- task registry -----------------------------------------------------------------------
#
# Every task is ``fn(shard, broadcast, args) -> result`` where ``shard`` is the
# worker-resident per-shard payload dict (or None for stateless dispatch),
# ``broadcast`` the worker-resident broadcast payload dict (or None), and
# ``args`` the per-call plain-data arguments.  Registering by name keeps
# messages free of pickled callables and makes the same registry serve the
# in-process executors and the spawned workers.


def _task_count_rows(shard: Optional[dict], broadcast: Optional[dict],
                     args: Any) -> Counter:
    """Stateless GROUP BY count over a shipped chunk of key rows."""
    return Counter(args)


def _task_join_chunk(shard: Optional[dict], broadcast: Optional[dict],
                     args: Any) -> Counter:
    """Stateless fused join+group-count over a shipped chunk payload."""
    return count_join_chunk(args)


def _task_partner_chunk(shard: Optional[dict], broadcast: Optional[dict],
                        args: Any) -> Counter:
    """Stateless fused partner-selection count over a shipped chunk payload."""
    return count_partner_chunk(args)


def _task_argmax_chunk(shard: Optional[dict], broadcast: Optional[dict],
                       args: Any) -> List[Tuple[int, int, float]]:
    """Stateless fused argmax selection over a shipped chunk payload."""
    return select_argmax_chunk(args)


#: Shard columns the row-by-row tasks hydrate into boxed lists (see
#: :func:`_shard_lists`).
_HYDRATED_COLUMNS = ("group_keys", "member_starts", "labels", "value_starts",
                     "value_ids")


def _shard_lists(shard: dict) -> dict:
    """Boxed-list copies of a shard's buffer columns, hydrated once per shard.

    Resident shard columns are machine-native int64 buffers
    (:class:`~repro.engine.columns.IntColumn`) -- ideal for shipping and for
    the bulk kernels, but indexing one element-by-element boxes a fresh
    Python int per access, where a list hands back the already-boxed object.
    The stdlib row-by-row folds therefore read these cached ``tolist()``
    copies (hydrated lazily worker-side, exactly like the ``_model_join``
    cache); the numpy kernels read the buffers directly.
    """
    lists = shard.get("_lists")
    if lists is None:
        lists = shard["_lists"] = {
            name: (column.tolist()
                   if isinstance(column, (array, ColumnView)) else column)
            for name, column in shard.items() if name in _HYDRATED_COLUMNS}
    return lists


def _derive_model_join(shard: dict) -> Tuple[Any, ...]:
    """Derive the resident model-build join payload from host-group columns.

    The co-occurrence query over one shard of hosts is a self-join local to
    the shard: the left side streams one row per (host, port, predictor id),
    the right index maps each shard-local host to its ``(port,)`` rows, and
    the left-vs-right exclusion drops the self-pairs.  Group keys are
    ``(predictor id, target port)`` packed into one int (ports < 65536), so
    the fold runs :func:`~repro.engine.fused.count_join_chunk`'s packed fast
    path.  Derivation happens worker-side on first use and is cached in the
    resident shard, so repeated model builds skip it entirely.
    """
    lists = _shard_lists(shard)
    member_starts = lists["member_starts"]
    labels = lists["labels"]
    value_starts = lists["value_starts"]
    value_ids = lists["value_ids"]
    left_host: List[int] = []
    left_port: List[int] = []
    left_pid: List[int] = []
    index: Dict[int, List[Tuple[int]]] = {}
    for g in range(len(member_starts) - 1):
        m_lo, m_hi = member_starts[g], member_starts[g + 1]
        if m_lo == m_hi:
            continue
        index[g] = [(labels[m],) for m in range(m_lo, m_hi)]
        for m in range(m_lo, m_hi):
            port = labels[m]
            for v in range(value_starts[m], value_starts[m + 1]):
                left_host.append(g)
                left_port.append(port)
                left_pid.append(value_ids[v])
    return ([left_host], [(0, left_pid)], ("LR", left_port, 0), [(1, 0)], 2,
            index, MODEL_PACK_BASE)


def _task_model_pairs(shard: dict, broadcast: Optional[dict], args: Any) -> Any:
    """Resident co-occurrence fold: packed (predictor id, port) counts.

    ``args`` optionally carries the column backend name: the default stdlib
    backend streams the derived join payload through
    :func:`~repro.engine.fused.count_join_chunk` and replies with a packed
    ``Counter``; the ``numpy`` backend folds the shard's buffers through
    :func:`~repro.engine.fused.fold_model_pairs_arrays` and replies with
    packed ``(keys, counts)`` columns.  The driver merges either shape into
    the same dictionary, and the two are equivalence-pinned by the tests.
    """
    if args and args[0] == "numpy":
        return fold_model_pairs_arrays(
            shard["member_starts"], shard["labels"], shard["value_starts"],
            shard["value_ids"], MODEL_PACK_BASE)
    payload = shard.get("_model_join")
    if payload is None:
        payload = shard["_model_join"] = _derive_model_join(shard)
    return count_join_chunk(payload)


def _task_model_denominators(shard: dict, broadcast: Optional[dict],
                             args: Any) -> Any:
    """Resident denominator fold: predictor-id occurrence counts.

    Same backend contract as :func:`_task_model_pairs`: stdlib replies with a
    ``Counter``, numpy with sorted ``(ids, counts)`` columns.
    """
    if args and args[0] == "numpy":
        return fold_value_counts_arrays(shard["value_ids"])
    return Counter(_shard_lists(shard)["value_ids"])


def _task_priors_partner(shard: dict, broadcast: dict, args: Any) -> Counter:
    """Resident priors fold: partner counts over the shard's host groups.

    ``args`` is ``(allowed_labels,)``; the score tables come from the
    broadcast model sides, everything else is already resident.
    """
    (allowed,) = args
    lists = _shard_lists(shard)
    payload = (lists["group_keys"], lists["member_starts"], lists["labels"],
               lists["value_starts"], lists["value_ids"],
               broadcast["target_counts"], broadcast["denominators"], allowed)
    return count_partner_chunk(payload)


def _task_index_argmax(shard: dict, broadcast: dict,
                       args: Any) -> List[Tuple[int, List[Tuple[int, int, float]]]]:
    """Resident argmax fold, one selection per group, tagged for re-ordering.

    Hash-sharding permutes group order, but the prediction-index build is
    order-sensitive (the serial winner list is the oracle), so each group's
    winners come back tagged with the group's original index and the driver
    merges via :func:`repro.engine.shard.merge_ordered`.
    """
    allowed, min_support, cutoff = args
    target_counts = broadcast["target_counts"]
    denominators = broadcast["denominators"]
    tie_ranks = broadcast["tie_ranks"]
    lists = _shard_lists(shard)
    member_starts = lists["member_starts"]
    labels = lists["labels"]
    value_starts = lists["value_starts"]
    value_ids = lists["value_ids"]
    out: List[Tuple[int, List[Tuple[int, int, float]]]] = []
    for local, original in enumerate(shard["group_order"]):
        m_lo, m_hi = member_starts[local], member_starts[local + 1]
        if m_hi - m_lo < 2:
            continue
        v_lo, v_hi = value_starts[m_lo], value_starts[m_hi]
        winners = select_argmax_chunk((
            (m_lo, m_hi), labels[m_lo:m_hi], value_starts[m_lo:m_hi + 1],
            value_ids[v_lo:v_hi], target_counts, denominators, tie_ranks,
            allowed, min_support, cutoff,
        ))
        if winners:
            out.append((original, winners))
    return out


def _task_probe(shard: Optional[dict], broadcast: Optional[dict],
                args: Any) -> Tuple[int, List[str]]:
    """Introspection task for tests: worker pid + resident shard columns."""
    resident = sorted(shard) if shard is not None else []
    return os.getpid(), resident


def _task_crash(shard: Optional[dict], broadcast: Optional[dict], args: Any) -> None:
    """Crash drill: kill the worker process without a reply.

    Exercises the crash-detection path (lifecycle tests, operational
    drills).  Gated behind an environment variable so ordinary API misuse
    cannot hard-kill a pool: without the opt-in the task fails like any
    other task error.
    """
    if os.environ.get("REPRO_RUNTIME_CRASH_TEST") != "1":
        raise RuntimeError(
            "the crash drill requires REPRO_RUNTIME_CRASH_TEST=1 in the "
            "worker environment")
    os._exit(17)


_TASKS: Dict[str, Callable[[Optional[dict], Optional[dict], Any], Any]] = {
    "count_rows": _task_count_rows,
    "join_chunk": _task_join_chunk,
    "partner_chunk": _task_partner_chunk,
    "argmax_chunk": _task_argmax_chunk,
    "model_pairs": _task_model_pairs,
    "model_denominators": _task_model_denominators,
    "priors_partner": _task_priors_partner,
    "index_argmax": _task_index_argmax,
    "_probe": _task_probe,
    "_crash": _task_crash,
}


# -- worker process ----------------------------------------------------------------------


def _worker_main(worker_id: int, inbox: Any, outbox: Any,
                 fault_plan: Optional[FaultPlan] = None,
                 generation: int = 0) -> None:
    """Worker loop: hold resident payloads, execute named tasks against them.

    Messages are plain tuples.  Requests arrive on the ``inbox`` queue:
    ``("load", task_id, key, shard_idx, payload)`` merges ``payload`` into
    the resident store (``shard_idx`` is ``None`` for broadcast payloads; a
    snapshot file reference resolves here, mapping its column files into
    this worker's address space instead of unpickling shipped buffers),
    ``("run", task_id, fn, key, shard_idx, args)`` executes a registered
    task, ``("drop", task_id, key)`` releases a key's payloads,
    ``("drop_shard", task_id, key, shard_idx)`` releases exactly one shard
    (the resize remap's migration cleanup), ``("close",)`` exits.  Replies -- ``("ok", worker_id, task_id, result)``
    or ``("err", worker_id, task_id, description)`` -- go back over
    ``outbox``, this worker's *private* pipe connection to the coordinator.
    ``run`` replies append a fifth element, the task's worker-side execute
    seconds, so the coordinator can split end-to-end latency into execute
    vs queue+IPC time; the coordinator unpacks replies by index and
    tolerates both widths.
    A single-writer pipe needs no cross-process lock and no feeder thread,
    so a worker hard-killed at any instant cannot leave a lock abandoned
    that other workers' replies would block on.

    ``fault_plan``/``generation`` drive deterministic chaos testing: the
    :class:`~repro.engine.faults.WorkerFaultState` may hard-kill the process,
    inject an exception, swallow a reply, or delay one, at exactly the
    occurrence the plan names.  Respawned workers run at a higher generation,
    which generation-scoped plans leave alone -- that is what makes
    "crash once, recover cleanly" reproducible.
    """
    faults = WorkerFaultState(fault_plan, worker_id, generation)
    store: Dict[Tuple[Any, Optional[int]], dict] = {}
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "close":
            break
        task_id = message[1]
        try:
            if kind == "load":
                _, _, key, shard_idx, payload = message
                faults.on_task("load")
                if faults.should_error("load"):
                    raise RuntimeError("injected fault: load")
                store.setdefault((key, shard_idx), {}).update(
                    _resolve_payload(payload))
                if faults.should_drop_reply("load"):
                    continue
                outbox.send(("ok", worker_id, task_id, None))
            elif kind == "run":
                _, _, fn_name, key, shard_idx, args = message
                faults.on_task(fn_name)
                if faults.should_error(fn_name):
                    raise RuntimeError(f"injected fault: {fn_name}")
                shard = store.get((key, shard_idx)) if key is not None else None
                broadcast = store.get((key, None)) if key is not None else None
                if key is not None and shard is None and broadcast is None:
                    raise KeyError(f"no resident payload for key {key!r}")
                exec_t0 = time.perf_counter()
                result = _TASKS[fn_name](shard, broadcast, args)
                exec_s = time.perf_counter() - exec_t0
                if faults.should_drop_reply(fn_name):
                    continue
                outbox.send(("ok", worker_id, task_id, result, exec_s))
            elif kind == "drop":
                _, _, key = message
                for resident_key in [k for k in store if k[0] == key]:
                    del store[resident_key]
                outbox.send(("ok", worker_id, task_id, None))
            elif kind == "drop_shard":
                _, _, key, shard_idx = message
                store.pop((key, shard_idx), None)
                outbox.send(("ok", worker_id, task_id, None))
            else:
                raise ValueError(f"unknown message kind: {kind!r}")
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            try:
                outbox.send(("err", worker_id, task_id, detail))
            except OSError:
                break  # coordinator is gone; nothing left to report to


# -- executors ---------------------------------------------------------------------------


class Executor:
    """Dispatch protocol every runtime backend implements.

    ``load`` makes a payload resident (per-shard or, with ``shard_idx=None``,
    broadcast to every worker), ``run`` executes a batch of named tasks and
    returns their results in order, ``drop`` releases a key, ``close`` tears
    the backend down.  A shard's tasks are always served by the worker
    holding the shard resident -- the pool backend records a per-key
    placement (least-loaded by shard row count, see :func:`lpt_placement`)
    when the shards load, which is what makes residency meaningful under
    skew.  ``broken`` reports an unrecoverable backend (a crashed pool):
    the only valid next step is ``close`` and a fresh runtime.

    ``telemetry`` is assigned by the owning :class:`EngineRuntime` when the
    backend starts; the class default is the shared null instance, so a
    backend constructed directly stays unobserved at no cost.
    """

    broken = False
    telemetry: Telemetry = NULL_TELEMETRY

    def load(self, key: Any, shard_idx: Optional[int], payload: dict) -> None:
        raise NotImplementedError

    def load_shards(self, key: Any, payloads: Sequence[dict]) -> None:
        """Load payload ``s`` onto shard ``s``'s worker (batched where possible)."""
        for shard_idx, payload in enumerate(payloads):
            self.load(key, shard_idx, payload)

    def resident_stats(self) -> Tuple[int, int]:
        """``(estimated bytes, payload count)`` resident in the backend."""
        return 0, 0

    def _observe_task(self, fn_name: str, exec_s: float,
                      queue_s: Optional[float] = None) -> None:
        """Record one task's latency split (subject to sampling)."""
        tel = self.telemetry
        if not tel.sampled():
            return
        tel.histogram("engine_task_execute_seconds",
                      "Worker-side task execution time",
                      task=fn_name).observe(exec_s)
        if queue_s is not None:
            tel.histogram("engine_task_queue_seconds",
                          "Time between dispatch and execution "
                          "(inbox queue + IPC)",
                          task=fn_name).observe(queue_s)

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        """Execute ``(fn_name, key, shard_idx, args)`` tasks, results in order."""
        raise NotImplementedError

    def drop(self, key: Any) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Runs every task inline in the calling thread (the reference backend)."""

    def __init__(self) -> None:
        self._store: Dict[Tuple[Any, Optional[int]], dict] = {}

    def _resolve(self, key: Any, shard_idx: Optional[int]):
        if key is None:
            return None, None
        shard = self._store.get((key, shard_idx))
        broadcast = self._store.get((key, None))
        if shard is None and broadcast is None:
            raise KeyError(f"no resident payload for key {key!r}")
        return shard, broadcast

    def load(self, key: Any, shard_idx: Optional[int], payload: dict) -> None:
        self._store.setdefault((key, shard_idx), {}).update(
            _resolve_payload(payload))

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        results = []
        timed = self.telemetry.enabled
        for fn_name, key, shard_idx, args in tasks:
            shard, broadcast = self._resolve(key, shard_idx)
            if timed:
                t0 = time.perf_counter()
                results.append(_TASKS[fn_name](shard, broadcast, args))
                self._observe_task(fn_name, time.perf_counter() - t0, 0.0)
            else:
                results.append(_TASKS[fn_name](shard, broadcast, args))
        return results

    def drop(self, key: Any) -> None:
        for resident_key in [k for k in self._store if k[0] == key]:
            del self._store[resident_key]

    def resident_stats(self) -> Tuple[int, int]:
        return (sum(_payload_nbytes(p) for p in self._store.values()),
                len(self._store))

    def close(self) -> None:
        self._store.clear()


class ThreadExecutor(SerialExecutor):
    """Runs tasks on a persistent thread pool over the shared in-process store.

    Residency is trivial (one address space), so this backend mainly
    validates the dispatch/sharding logic and serves workloads whose folds
    release the GIL; the resident store is only read during ``run``.
    """

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        import concurrent.futures

        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        timed = self.telemetry.enabled

        def _one(task):
            fn_name, key, shard_idx, args = task
            shard, broadcast = self._resolve(key, shard_idx)
            if timed:
                t0 = time.perf_counter()
                result = _TASKS[fn_name](shard, broadcast, args)
                self._observe_task(fn_name, time.perf_counter() - t0)
                return result
            return _TASKS[fn_name](shard, broadcast, args)

        return list(self._pool.map(_one, tasks))

    def resize(self, workers: int) -> None:
        """Swap the thread pool for one of the new size.

        The resident store is shared process memory, so no payload moves at
        all -- resizing is purely a concurrency-cap change.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        import concurrent.futures

        old_pool = self._pool
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        old_pool.shutdown(wait=True)

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        super().close()


class PoolExecutor(Executor):
    """Runs tasks on a persistent pool of spawned worker processes.

    Each worker owns a dedicated inbox queue, so tasks for shard ``s`` always
    land on the worker whose store holds shard ``s``; replies come back on a
    per-worker single-writer pipe.  One shared reply queue would be guarded
    by a cross-process write lock, and a worker hard-killed while holding it
    would leave the lock abandoned forever, silently wedging every
    survivor's replies -- per-worker pipes make a crash poison at most the
    dead worker's own channel, which recovery replaces along with the
    process.  Workers start with the ``spawn`` method (stable
    across Python 3.10-3.12, immune to the 3.12+ fork-in-threads
    deprecation) and live until :meth:`close`.

    The pool supervises its workers: a coordinator-side copy of every
    resident payload (``_resident``) makes a dead worker recoverable in
    place -- respawn the process at the next generation, re-load exactly the
    shards its placement owned, re-dispatch only the still-outstanding tasks.
    Recovery runs under a bounded retry budget with exponential backoff;
    exhausting it abandons the pool with :class:`WorkerCrashError`.  Optional
    deadlines turn a wedged-but-alive worker into :class:`WorkerTimeoutError`
    with a process dump instead of a silent hang.
    """

    _POLL_SECONDS = 0.05
    _RETRY_BACKOFF_S = 0.05
    _MAX_BACKOFF_S = 1.0

    def __init__(self, workers: int, *, max_task_retries: int = 2,
                 task_deadline_s: Optional[float] = None,
                 execution_deadline_s: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.max_task_retries = max_task_retries
        self.task_deadline_s = task_deadline_s
        self.execution_deadline_s = execution_deadline_s
        self.fault_plan = fault_plan
        self._context = multiprocessing.get_context("spawn")
        self._processes: List[Any] = []
        self._inboxes: List[Any] = []
        # Receive end of each worker's private reply pipe, by worker slot.
        self._readers: List[Any] = []
        self._next_task_id = 0
        self._started = False
        self._broken = False
        # Per-key shard placement decided at load_shards time (greedy
        # least-loaded by shard row count); shard tasks must route to the
        # worker actually holding the shard, so the map lives for exactly
        # as long as the resident data does.
        self._placements: Dict[Any, List[int]] = {}
        # Coordinator-side copy of every resident payload, keyed like the
        # worker stores: (key, shard_idx) with shard_idx=None for broadcast.
        # This is what makes a dead worker recoverable without asking the
        # caller to re-ship anything.
        self._resident: Dict[Tuple[Any, Optional[int]], dict] = {}
        # Spawn generation per worker slot; respawns bump it so
        # generation-scoped fault plans leave recovered workers alone.
        self._generations: List[int] = []
        self.recovery_stats = RecoveryStats()

    @property
    def broken(self) -> bool:
        return self._broken

    # -- pool management -----------------------------------------------------------

    def _spawn_worker(self, worker_id: int) -> None:
        """Start (or restart) the process serving ``worker_id``'s inbox.

        Every (re)spawn gets a fresh inbox queue *and* a fresh reply pipe:
        the coordinator closes its copy of the write end immediately after
        the fork, so the worker process is the pipe's only writer and its
        death shows up as EOF on the read end instead of a silent stall.
        """
        inbox = self._context.Queue()
        reader, writer = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, inbox, writer, self.fault_plan,
                  self._generations[worker_id]),
            daemon=True, name=f"engine-runtime-{worker_id}",
        )
        process.start()
        writer.close()
        if worker_id < len(self._inboxes):
            self._inboxes[worker_id] = inbox
            self._readers[worker_id] = reader
            self._processes[worker_id] = process
        else:
            self._inboxes.append(inbox)
            self._readers.append(reader)
            self._processes.append(process)

    def _ensure_started(self) -> None:
        if self._broken:
            raise WorkerCrashError("runtime pool is broken after a worker crash")
        if self._started:
            return
        self._generations = [0] * self.workers
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id)
        self._started = True

    def _terminate_processes(self) -> None:
        """Terminate every live worker, escalating to ``kill`` when needed.

        ``terminate`` sends SIGTERM, which a wedged worker (stuck in C code,
        or with the signal masked) can outlive; anything still alive after
        the join grace gets SIGKILL so no process can leak past interpreter
        exit.
        """
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)

    def _abandon(self) -> None:
        """Terminate everything after an unrecoverable failure."""
        self._broken = True
        self._placements.clear()
        self._resident.clear()
        self._terminate_processes()
        self._drain_queues()

    def _process_dump(self) -> str:
        """One line per worker slot: pid, liveness, exit code, generation."""
        lines = []
        for worker_id, process in enumerate(self._processes):
            lines.append(
                f"  worker {worker_id}: pid={process.pid} "
                f"alive={process.is_alive()} exitcode={process.exitcode} "
                f"generation={self._generations[worker_id]}")
        return "\n".join(lines)

    def _drain_queues(self) -> None:
        for inbox in self._inboxes:
            inbox.close()
            inbox.cancel_join_thread()
        for reader in self._readers:
            reader.close()
        self._inboxes = []
        self._readers = []
        self._processes = []

    def _send(self, worker_id: int, message: Tuple[Any, ...]) -> None:
        self._inboxes[worker_id].put(message)

    def _new_task_id(self) -> int:
        task_id = self._next_task_id
        self._next_task_id += 1
        return task_id

    @staticmethod
    def _describe(message: Tuple[Any, ...]) -> Tuple[str, Any, Optional[int]]:
        """``(task, key, shard_idx)`` routing info for event reporting."""
        kind = message[0]
        if kind == "run":
            return message[2], message[3], message[4]
        if kind == "load":
            return "load", message[2], message[3]
        if kind == "drop":
            return "drop", message[2], None
        if kind == "drop_shard":
            return "drop_shard", message[2], message[3]
        return kind, None, None

    def _record_resident(self, key: Any, shard_idx: Optional[int],
                         payload: Any) -> None:
        """Record the coordinator-side recovery copy of one payload.

        Dict payloads merge (re-loading a key updates columns in place, the
        historical contract); a snapshot file reference *replaces* the entry
        -- the files on disk are the source of truth, so recovery re-opens
        them instead of re-shipping coordinator-held buffers.
        """
        existing = self._resident.get((key, shard_idx))
        if isinstance(existing, dict) and isinstance(payload, dict):
            existing.update(payload)
        else:
            self._resident[(key, shard_idx)] = payload

    def _recover(self, dead: Sequence[int],
                 inflight: Dict[int, Tuple[int, Tuple[Any, ...]]],
                 alias: Dict[int, int], internal: Set[int],
                 attempt: int) -> None:
        """Respawn dead workers, re-load their shards, re-dispatch their tasks.

        The outstanding messages are snapshotted *before* respawning because
        recovered workers reuse their slot's worker id.  Reload messages for
        the dead worker's resident payloads are enqueued first and the
        re-dispatched tasks after them -- the inbox is FIFO, so residency is
        guaranteed restored before any task runs; no separate ack round is
        needed.  Loads are ``update()``-idempotent, so a load that was
        in flight when the worker died may harmlessly apply twice.
        """
        stale = {tid: entry for tid, entry in inflight.items()
                 if entry[0] in dead}
        for worker_id in dead:
            process = self._processes[worker_id]
            _emit(RuntimeEvent(kind="worker_crash", worker_id=worker_id,
                               exit_code=process.exitcode, attempt=attempt))
            self.recovery_stats.crashes_detected += 1
            self.telemetry.counter("engine_worker_crashes_total",
                                   "Worker processes found dead").inc()
            old_inbox = self._inboxes[worker_id]
            old_inbox.close()
            old_inbox.cancel_join_thread()
            # Abandon the dead worker's reply pipe along with the process:
            # anything still buffered in it is a reply for a task that is
            # about to be re-dispatched, and the fresh copy is authoritative.
            self._readers[worker_id].close()
            self._generations[worker_id] += 1
            self._spawn_worker(worker_id)
            self.recovery_stats.respawns += 1
            self.telemetry.counter("engine_worker_respawns_total",
                                   "Dead workers respawned in place").inc()
            _emit(RuntimeEvent(kind="respawn", worker_id=worker_id,
                               attempt=attempt))
            for (key, shard_idx), payload in self._resident.items():
                if shard_idx is None:
                    owned = True  # broadcast payloads live on every worker
                else:
                    owned = self._worker_for(shard_idx, 0, key) == worker_id
                if not owned:
                    continue
                task_id = self._new_task_id()
                message = ("load", task_id, key, shard_idx, payload)
                self._send(worker_id, message)
                inflight[task_id] = (worker_id, message)
                internal.add(task_id)
                if shard_idx is None:
                    self.recovery_stats.reloaded_broadcasts += 1
                    self.telemetry.counter(
                        "engine_broadcast_reloads_total",
                        "Broadcast payloads re-shipped during recovery").inc()
                else:
                    self.recovery_stats.reloaded_shards += 1
                    # Snapshot-backed shards re-open files (zero queue
                    # bytes); dict payloads re-ship their buffers.
                    self.recovery_stats.shard_bytes_queued += (
                        _queued_shard_bytes(payload))
                    self.telemetry.counter(
                        "engine_shard_reloads_total",
                        "Shards re-shipped during recovery").inc()
                _emit(RuntimeEvent(kind="reload", worker_id=worker_id,
                                   key=key, shard_idx=shard_idx,
                                   attempt=attempt))
        for old_tid, (worker_id, message) in stale.items():
            del inflight[old_tid]
            original = alias.pop(old_tid, old_tid)
            was_internal = old_tid in internal
            internal.discard(old_tid)
            task_id = self._new_task_id()
            fresh = (message[0], task_id) + message[2:]
            self._send(worker_id, fresh)
            inflight[task_id] = (worker_id, fresh)
            if was_internal:
                internal.add(task_id)
            else:
                alias[task_id] = original
            self.recovery_stats.redispatched_tasks += 1
            self.telemetry.counter(
                "engine_task_redispatches_total",
                "Outstanding tasks re-dispatched after a crash").inc()
            task, key, shard_idx = self._describe(message)
            _emit(RuntimeEvent(kind="redispatch", worker_id=worker_id,
                               task=task, key=key, shard_idx=shard_idx,
                               attempt=attempt))

    def _poll_replies(self) -> List[Tuple[Any, ...]]:
        """Drain every reply currently readable from the per-worker pipes.

        Blocks up to ``_POLL_SECONDS`` waiting for the first ready pipe.  A
        pipe at EOF (its worker died with nothing buffered) is closed and
        never polled again; the liveness checks in :meth:`_collect` -- not
        this method -- decide what the death means.
        """
        readers = [reader for reader in self._readers if not reader.closed]
        if not readers:
            time.sleep(self._POLL_SECONDS)
            return []
        replies: List[Tuple[Any, ...]] = []
        for reader in multiprocessing.connection.wait(
                readers, timeout=self._POLL_SECONDS):
            try:
                replies.append(reader.recv())
            except (EOFError, OSError):
                reader.close()
        return replies

    def _collect(self, inflight: Dict[int, Tuple[int, Tuple[Any, ...]]],
                 dispatch_ts: Optional[Dict[int, float]] = None,
                 ) -> Dict[int, Any]:
        """Await one reply per dispatched task, healing the pool as needed.

        ``inflight`` maps each outstanding task id to ``(worker_id,
        message)`` -- keeping the full message is what lets the supervisor
        re-dispatch after a crash and report *which* task failed.
        ``dispatch_ts`` (telemetry-enabled ``run`` dispatches only) maps the
        *original* task ids to their ``perf_counter`` send times; combined
        with the worker-reported execute seconds riding on ``ok`` replies it
        splits end-to-end latency into execute vs queue+IPC.  Outcomes:

        * a task that **raises** is not pool-fatal: the worker loop
          survives, every outstanding reply is drained first (no stale
          messages can leak into the next request), and one
          :class:`WorkerTaskError` is raised;
        * a worker that **dies** with tasks outstanding triggers in-place
          recovery (:meth:`_recover`) under exponential backoff, up to
          ``max_task_retries`` rounds; an exhausted budget abandons the
          pool with :class:`WorkerCrashError`;
        * **deadlines** (when configured) turn replies that stop arriving
          into :class:`WorkerTimeoutError` with a process dump.

        Returns results keyed by the *original* task id -- re-dispatched
        tasks map back through their alias, so callers never observe
        recovery.  Replies a worker buffered before dying are drained from
        its pipe ahead of death detection and count normally; recovery then
        closes the dead worker's channel, so a reply whose task id is no
        longer in flight (the task was re-dispatched) can no longer arrive
        by construction -- the guard that ignores one stays as a
        belt-and-suspenders invariant, and the re-dispatched copy is
        authoritative (tasks being pure, bit-identical).
        """
        alias: Dict[int, int] = {}
        internal: Set[int] = set()
        needed: Set[int] = set(inflight)
        results: Dict[int, Any] = {}
        errors: List[str] = []
        retries_left = self.max_task_retries
        attempt = 0
        start = time.monotonic()
        last_progress = start
        while len(results) < len(needed):
            replies = self._poll_replies()
            if not replies:
                dead = [i for i, p in enumerate(self._processes)
                        if not p.is_alive()]
                pending_on_dead = [tid for tid, (wid, _) in inflight.items()
                                   if wid in dead]
                if pending_on_dead:
                    codes = {i: self._processes[i].exitcode for i in dead}
                    if retries_left <= 0:
                        self._abandon()
                        raise WorkerCrashError(
                            f"engine runtime worker(s) {sorted(set(dead))} died "
                            f"(exit codes {codes}) while "
                            f"{len(pending_on_dead)} task(s) were outstanding "
                            f"and the recovery budget "
                            f"({self.max_task_retries} retr"
                            f"{'y' if self.max_task_retries == 1 else 'ies'}) "
                            f"is exhausted; the pool has been shut down"
                        ) from None
                    retries_left -= 1
                    attempt += 1
                    self.recovery_stats.retry_rounds += 1
                    self.telemetry.counter(
                        "engine_retry_rounds_total",
                        "Recovery rounds spent healing crashed workers").inc()
                    backoff = min(self._MAX_BACKOFF_S,
                                  self._RETRY_BACKOFF_S * (2 ** (attempt - 1)))
                    _emit(RuntimeEvent(kind="retry_backoff", attempt=attempt,
                                       detail=f"sleeping {backoff:.3f}s before "
                                              f"recovering workers "
                                              f"{sorted(set(dead))} "
                                              f"(exit codes {codes})"))
                    time.sleep(backoff)
                    self._recover(dead, inflight, alias, internal, attempt)
                    last_progress = time.monotonic()
                    continue
                now = time.monotonic()
                if (self.task_deadline_s is not None and inflight
                        and now - last_progress > self.task_deadline_s):
                    dump = self._process_dump()
                    stuck = sorted({wid for wid, _ in inflight.values()})
                    self._abandon()
                    self.telemetry.counter(
                        "engine_timeouts_total",
                        "Dispatches abandoned on an expired deadline").inc()
                    _emit(RuntimeEvent(kind="timeout", detail=dump))
                    raise WorkerTimeoutError(
                        f"no reply for {self.task_deadline_s}s with "
                        f"{len(inflight)} task(s) outstanding on worker(s) "
                        f"{stuck}; process dump:\n{dump}") from None
                if (self.execution_deadline_s is not None
                        and now - start > self.execution_deadline_s):
                    dump = self._process_dump()
                    self._abandon()
                    self.telemetry.counter(
                        "engine_timeouts_total",
                        "Dispatches abandoned on an expired deadline").inc()
                    _emit(RuntimeEvent(kind="timeout", detail=dump))
                    raise WorkerTimeoutError(
                        f"execution exceeded its {self.execution_deadline_s}s "
                        f"deadline with {len(inflight)} task(s) outstanding; "
                        f"process dump:\n{dump}") from None
                continue
            last_progress = time.monotonic()
            for reply in replies:
                # Unpack by index: "run" ok-replies carry a fifth element
                # (worker-side execute seconds), everything else is 4 wide.
                status, task_id, payload = reply[0], reply[2], reply[3]
                entry = inflight.pop(task_id, None)
                if entry is None:
                    continue  # stale duplicate: this task was re-dispatched
                if task_id in internal:
                    internal.discard(task_id)
                    if status == "err":
                        self._abandon()
                        raise WorkerCrashError(
                            "engine runtime failed to re-load resident "
                            f"payloads during recovery:\n{payload}")
                    continue
                original = alias.pop(task_id, task_id)
                if status == "err":
                    worker_id, message = entry
                    task, key, shard_idx = self._describe(message)
                    _emit(RuntimeEvent(kind="task_error", worker_id=worker_id,
                                       task=task, key=key,
                                       shard_idx=shard_idx, detail=payload))
                    self.telemetry.counter(
                        "engine_task_errors_total",
                        "Tasks that raised inside a worker", task=task).inc()
                    errors.append(payload)
                    results[original] = None
                else:
                    if dispatch_ts is not None and len(reply) > 4:
                        sent = dispatch_ts.get(original)
                        if sent is not None:
                            exec_s = reply[4]
                            total_s = time.perf_counter() - sent
                            self._observe_task(self._describe(entry[1])[0],
                                               exec_s,
                                               max(0.0, total_s - exec_s))
                    results[original] = payload
        if errors:
            raise WorkerTaskError(
                f"engine runtime task failed in worker:\n{errors[0]}")
        return results

    def _worker_for(self, shard_idx: Optional[int], position: int,
                    key: Any = None) -> int:
        """The worker serving a task: stateless work round-robins by
        position; shard tasks follow the key's recorded placement (falling
        back to ``shard % workers`` for keys loaded shard-by-shard)."""
        if shard_idx is None:
            return position % self.workers
        placement = self._placements.get(key) if key is not None else None
        if placement is not None and shard_idx < len(placement):
            return placement[shard_idx]
        return shard_idx % self.workers

    # -- Executor interface --------------------------------------------------------

    def load(self, key: Any, shard_idx: Optional[int], payload: Any) -> None:
        self._ensure_started()
        # Record the coordinator-side copy before dispatch so a worker that
        # dies mid-load is recoverable from the same source of truth.
        self._record_resident(key, shard_idx, payload)
        inflight: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        if shard_idx is None:
            for worker_id in range(self.workers):
                task_id = self._new_task_id()
                message = ("load", task_id, key, None, payload)
                self._send(worker_id, message)
                inflight[task_id] = (worker_id, message)
        else:
            self.recovery_stats.shard_bytes_queued += _queued_shard_bytes(
                payload)
            worker_id = self._worker_for(shard_idx, 0, key)
            task_id = self._new_task_id()
            message = ("load", task_id, key, shard_idx, payload)
            self._send(worker_id, message)
            inflight[task_id] = (worker_id, message)
        self._collect(inflight)

    def load_shards(self, key: Any, payloads: Sequence[dict]) -> None:
        """Batched shard load: all sends first, one collect, so workers
        deserialize their shards concurrently instead of one after another.

        The first load of a key also decides its shard placement: greedy
        least-loaded (LPT) over the payloads' row counts, so a skewed
        universe's heavy shards spread across workers instead of landing
        wherever ``shard % num_workers`` happens to point.  Re-loading an
        already-placed key keeps the existing placement (the merge must
        land on the workers already holding the shards).
        """
        self._ensure_started()
        if key not in self._placements:
            self._placements[key] = lpt_placement(
                [_payload_rows(payload) for payload in payloads], self.workers)
        inflight: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        for shard_idx, payload in enumerate(payloads):
            # Coordinator copy first: a worker dying mid-load must be
            # recoverable from exactly what was being shipped.
            self._record_resident(key, shard_idx, payload)
            self.recovery_stats.shard_bytes_queued += _queued_shard_bytes(
                payload)
            worker_id = self._worker_for(shard_idx, 0, key)
            task_id = self._new_task_id()
            message = ("load", task_id, key, shard_idx, payload)
            self._send(worker_id, message)
            inflight[task_id] = (worker_id, message)
        self._collect(inflight)

    def resize(self, workers: int) -> None:
        """Grow or shrink the pool to ``workers``, remapping shard placement.

        Resident data makes naive resize wrong (a new worker would own
        shards it does not hold) and naive re-load expensive (re-shipping
        every shard through the queues).  This resize is a **placement
        remap** instead:

        1. *Grow*: spawn the new worker slots and replicate every broadcast
           payload to them (broadcasts live on all workers by contract).
        2. *Remap*: for every resident key, recompute the LPT placement over
           the key's shard sizes at the new worker count.  Each shard whose
           owner changed is loaded onto its new worker from the
           coordinator's resident record -- a snapshot file reference for
           disk-backed shards (the new owner maps the files; **zero column
           bytes cross a queue**) or the payload dict for queue-shipped ones
           -- and dropped from its surviving old owner via ``drop_shard``.
        3. *Shrink*: retired workers close only after their shards' new
           owners acknowledged the loads, then their slots truncate away.

        Placement-only keys loaded shard-by-shard (no recorded placement)
        are pinned to their historical ``shard % old_workers`` layout first,
        so their shards migrate correctly too.  All re-routing state updates
        before the polite close of retired workers, so a crash mid-resize
        recovers against the *new* placement.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._ensure_started()
        old_workers = self.workers
        if workers == old_workers:
            return
        # Keys without a recorded placement (loaded via bare load()) used
        # the shard % workers fallback; freeze that layout so the remap
        # below sees where their shards actually live.
        shard_counts: Dict[Any, int] = {}
        for key, shard_idx in self._resident:
            if shard_idx is not None:
                shard_counts[key] = max(shard_counts.get(key, 0),
                                        shard_idx + 1)
        for key, count in shard_counts.items():
            if key not in self._placements:
                self._placements[key] = [s % old_workers
                                         for s in range(count)]
        inflight: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        if workers > old_workers:
            self._generations.extend([0] * (workers - old_workers))
            for worker_id in range(old_workers, workers):
                self._spawn_worker(worker_id)
            for (key, shard_idx), payload in self._resident.items():
                if shard_idx is not None:
                    continue
                for worker_id in range(old_workers, workers):
                    task_id = self._new_task_id()
                    message = ("load", task_id, key, None, payload)
                    self._send(worker_id, message)
                    inflight[task_id] = (worker_id, message)
        self.workers = workers
        migrated = 0
        for key, old_placement in list(self._placements.items()):
            sizes = [
                _payload_rows(self._resident[(key, shard_idx)])
                if (key, shard_idx) in self._resident else 0
                for shard_idx in range(len(old_placement))
            ]
            new_placement = lpt_placement(sizes, workers)
            for shard_idx, (old_worker, new_worker) in enumerate(
                    zip(old_placement, new_placement)):
                if old_worker == new_worker:
                    continue
                payload = self._resident.get((key, shard_idx))
                if payload is None:
                    continue
                task_id = self._new_task_id()
                message = ("load", task_id, key, shard_idx, payload)
                self._send(new_worker, message)
                inflight[task_id] = (new_worker, message)
                migrated += 1
                self.recovery_stats.migrated_shards += 1
                self.recovery_stats.shard_bytes_queued += (
                    _queued_shard_bytes(payload))
                self.telemetry.counter(
                    "engine_shard_migrations_total",
                    "Shards moved to a different worker by resize").inc()
                _emit(RuntimeEvent(kind="migrate", worker_id=new_worker,
                                   key=key, shard_idx=shard_idx))
                if old_worker < workers:
                    drop_id = self._new_task_id()
                    drop_message = ("drop_shard", drop_id, key, shard_idx)
                    self._send(old_worker, drop_message)
                    inflight[drop_id] = (old_worker, drop_message)
            self._placements[key] = new_placement
        self._collect(inflight)
        if workers < old_workers:
            for worker_id in range(workers, old_workers):
                process = self._processes[worker_id]
                if process.is_alive():
                    try:
                        self._send(worker_id, ("close",))
                    except (OSError, ValueError):
                        pass
            for worker_id in range(workers, old_workers):
                process = self._processes[worker_id]
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
                self._inboxes[worker_id].close()
                self._inboxes[worker_id].cancel_join_thread()
                self._readers[worker_id].close()
            del self._processes[workers:]
            del self._inboxes[workers:]
            del self._readers[workers:]
            del self._generations[workers:]
        self.recovery_stats.resizes += 1
        self.telemetry.counter("engine_pool_resizes_total",
                               "Elastic pool resize operations").inc()
        _emit(RuntimeEvent(
            kind="resize",
            detail=f"{old_workers} -> {workers} workers, "
                   f"{migrated} shard(s) migrated"))

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        self._ensure_started()
        inflight: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        order: List[int] = []
        dispatch_ts: Optional[Dict[int, float]] = (
            {} if self.telemetry.enabled else None)
        for position, (fn_name, key, shard_idx, args) in enumerate(tasks):
            worker_id = self._worker_for(shard_idx, position, key)
            task_id = self._new_task_id()
            message = ("run", task_id, fn_name, key, shard_idx, args)
            self._send(worker_id, message)
            inflight[task_id] = (worker_id, message)
            order.append(task_id)
            if dispatch_ts is not None:
                dispatch_ts[task_id] = time.perf_counter()
        results = self._collect(inflight, dispatch_ts)
        return [results[task_id] for task_id in order]

    def resident_stats(self) -> Tuple[int, int]:
        return (sum(_payload_nbytes(p) for p in self._resident.values()),
                len(self._resident))

    def drop(self, key: Any) -> None:
        self._placements.pop(key, None)
        for resident_key in [k for k in self._resident if k[0] == key]:
            del self._resident[resident_key]
        if not self._started or self._broken:
            return
        inflight: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        for worker_id in range(self.workers):
            task_id = self._new_task_id()
            message = ("drop", task_id, key)
            self._send(worker_id, message)
            inflight[task_id] = (worker_id, message)
        self._collect(inflight)

    def close(self) -> None:
        if not self._started:
            return
        if not self._broken:
            for worker_id, process in enumerate(self._processes):
                if process.is_alive():
                    try:
                        self._send(worker_id, ("close",))
                    except (OSError, ValueError):
                        pass
            for process in self._processes:
                process.join(timeout=2.0)
            # Escalate: anything that survived the polite close gets SIGTERM,
            # and anything that survives *that* gets SIGKILL (a worker wedged
            # in C code or ignoring SIGTERM must not leak past exit).
            self._terminate_processes()
        self._drain_queues()
        self._placements.clear()
        self._resident.clear()
        self._started = False


# -- the runtime -------------------------------------------------------------------------


class EngineRuntime:
    """A persistent, shard-aware execution runtime for fused query plans.

    One runtime owns one executor backend (``serial``, ``thread`` or
    ``pool``) for its whole life: workers start once (lazily, on first use)
    and every plan execution reuses them.  Data ships through
    :meth:`load_shards` / :meth:`load_broadcast` and stays resident in the
    workers under a caller-chosen key; :meth:`execute` then runs a registered
    task against each resident shard, shipping only per-call arguments.
    :meth:`map_stateless` covers the classic scatter path (payload chunks
    shipped per call) for plans whose data is not resident -- still on the
    warm pool, so per-call process spawn is gone either way.

    Results are bit-identical across backends and shard counts: counter
    tasks merge order-independently, and order-sensitive tasks come back
    tagged for exact re-ordering (see
    :func:`repro.engine.shard.merge_ordered`).

    Lifecycle: :meth:`close` is explicit and idempotent; the runtime is a
    context manager; using a closed (or crashed) runtime raises instead of
    hanging.
    """

    def __init__(self, executor: str = "serial", num_workers: int = 0,
                 shard_count: int = 0, *, max_task_retries: int = 2,
                 task_deadline_s: Optional[float] = None,
                 execution_deadline_s: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        """Configure the runtime (workers start lazily on first use).

        Args:
            executor: ``"serial"``, ``"thread"`` or ``"pool"``.
            num_workers: pool size; ``0`` means :func:`default_worker_count`.
            shard_count: shards resident datasets are partitioned into;
                ``0`` means one shard per worker.  More shards than workers
                is valid (workers own several shards each, placed
                least-loaded by row count at load time -- see
                :func:`lpt_placement` -- which is what keeps skewed
                universes balanced).
            max_task_retries: recovery rounds the pool backend may spend
                respawning dead workers per dispatch before surfacing
                :class:`WorkerCrashError`; ``0`` restores fail-fast.
            task_deadline_s: seconds without *any* reply before a dispatch
                raises :class:`WorkerTimeoutError` (``None`` disables).
            execution_deadline_s: wall-clock budget for one whole dispatch
                (``None`` disables).
            fault_plan: deterministic chaos plan shipped into every worker
                (tests and drills only; ``None`` in production).
            telemetry: instrumentation sink for dispatch/queue/execute
                timings, crash counters and resident gauges; ``None`` (the
                default) selects the shared disabled instance.
        """
        if executor not in RUNTIME_EXECUTORS:
            raise ValueError(
                f"unknown executor: {executor!r} (expected one of {RUNTIME_EXECUTORS})")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 selects the default)")
        if shard_count < 0:
            raise ValueError("shard_count must be >= 0 (0 selects one per worker)")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        for name, deadline in (("task_deadline_s", task_deadline_s),
                               ("execution_deadline_s", execution_deadline_s)):
            if deadline is not None and deadline <= 0:
                raise ValueError(f"{name} must be positive when set")
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan or None")
        self.executor = executor
        self.num_workers = num_workers or (1 if executor == "serial"
                                           else default_worker_count())
        self.shard_count = shard_count or self.num_workers
        self.max_task_retries = max_task_retries
        self.task_deadline_s = task_deadline_s
        self.execution_deadline_s = execution_deadline_s
        self.fault_plan = fault_plan
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._backend: Optional[Executor] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def broken(self) -> bool:
        """True after a worker crash made the pool unusable.

        A broken runtime fails fast on every further dispatch; the recovery
        path is :meth:`close` plus a fresh runtime (the GPS orchestrator does
        this automatically on its next :meth:`~repro.core.gps.GPS.runtime`
        call).
        """
        return self._backend is not None and self._backend.broken

    @property
    def wants_encoded_payloads(self) -> bool:
        """True when payloads cross a process boundary (encode before shipping)."""
        return self.executor == "pool"

    @property
    def recovery_stats(self) -> RecoveryStats:
        """Supervision counters (all zero for in-process backends)."""
        if isinstance(self._backend, PoolExecutor):
            return self._backend.recovery_stats
        return RecoveryStats()

    def _ensure_backend(self) -> Executor:
        if self._closed:
            raise RuntimeError("engine runtime is closed")
        if self._backend is None:
            if self.executor == "serial":
                self._backend = SerialExecutor()
            elif self.executor == "thread":
                self._backend = ThreadExecutor(self.num_workers)
            else:
                self._backend = PoolExecutor(
                    self.num_workers,
                    max_task_retries=self.max_task_retries,
                    task_deadline_s=self.task_deadline_s,
                    execution_deadline_s=self.execution_deadline_s,
                    fault_plan=self.fault_plan)
            self._backend.telemetry = self.telemetry
        return self._backend

    def _update_resident_gauges(self) -> None:
        if not self.telemetry.enabled or self._backend is None:
            return
        nbytes, payloads = self._backend.resident_stats()
        self.telemetry.gauge(
            "engine_resident_bytes",
            "Estimated bytes of worker-resident payload columns").set(nbytes)
        self.telemetry.gauge(
            "engine_resident_payloads",
            "Worker-resident payload entries (shards + broadcasts)"
        ).set(payloads)

    def close(self) -> None:
        """Tear the worker pool down; idempotent, safe after a crash."""
        if self._closed:
            return
        self._closed = True
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "EngineRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- resident data -------------------------------------------------------------

    def load_shards(self, key: Any, shard_payloads: Sequence[dict]) -> None:
        """Make per-shard payload dicts resident under ``key``.

        ``shard_payloads`` must have exactly ``shard_count`` entries.  The
        pool backend places shards greedily least-loaded by row count
        (:func:`lpt_placement`; balanced equal-size layouts reduce to the
        round-robin ``s % num_workers``), and each shard stays resident on
        its worker until :meth:`unload` -- the "ship the data once"
        contract callers like
        :class:`repro.core.runtime_plans.ResidentHostGroups` build on.
        Loading the same key again merges (and for colliding column names
        replaces) payload entries on the workers already holding them.
        """
        if len(shard_payloads) != self.shard_count:
            raise ValueError(
                f"expected {self.shard_count} shard payloads, got {len(shard_payloads)}")
        backend = self._ensure_backend()
        if self.telemetry.enabled:
            t0 = time.perf_counter()
            backend.load_shards(key, shard_payloads)
            self.telemetry.histogram(
                "engine_load_seconds",
                "Wall-clock time making payloads resident",
                kind="shards").observe(time.perf_counter() - t0)
            self._update_resident_gauges()
        else:
            backend.load_shards(key, shard_payloads)

    def load_shards_from_snapshot(self, key: Any,
                                  shard_refs: Sequence[Any]) -> None:
        """Make snapshot shards resident under ``key`` -- zero-copy.

        ``shard_refs`` are :class:`~repro.engine.snapshot.ShardFileRef`
        handles (one per shard, ``shard_count`` of them, e.g. from
        :meth:`repro.engine.snapshot.Snapshot.shard_refs`).  Unlike
        :meth:`load_shards`, no column bytes travel through the worker
        queues: each pool worker receives only its placement's descriptors
        and ``mmap``\\ s the shard files straight from disk
        (:attr:`RecoveryStats.shard_bytes_queued` stays untouched).  The
        coordinator's recovery record *is* the reference, so a crashed
        worker heals by re-opening files, and :meth:`resize` migrates shards
        by moving descriptors.  In-process backends resolve the references
        inline -- results stay bit-identical across executors.
        """
        if len(shard_refs) != self.shard_count:
            raise ValueError(
                f"expected {self.shard_count} shard references, "
                f"got {len(shard_refs)}")
        backend = self._ensure_backend()
        if self.telemetry.enabled:
            t0 = time.perf_counter()
            backend.load_shards(key, shard_refs)
            self.telemetry.histogram(
                "engine_load_seconds",
                "Wall-clock time making payloads resident",
                kind="snapshot").observe(time.perf_counter() - t0)
            self._update_resident_gauges()
        else:
            backend.load_shards(key, shard_refs)

    def resize(self, num_workers: int) -> None:
        """Change the pool size in place, keeping resident data usable.

        The pool backend remaps shard placement (see
        :meth:`PoolExecutor.resize`): snapshot-backed shards migrate by
        closing and re-opening file handles, queue-shipped shards by
        re-sending their payload dict; broadcasts replicate to new workers.
        The thread backend swaps its thread pool (shared memory moves
        nothing); the serial backend just records the number.
        ``shard_count`` never changes -- it was fixed when the resident
        datasets were sharded -- so more workers than shards idle, and
        fewer workers than shards stack shards per worker, exactly like
        construction-time sizing.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_workers == self.num_workers:
            return
        backend = self._ensure_backend()
        resize = getattr(backend, "resize", None)
        if resize is not None:
            if self.telemetry.enabled:
                t0 = time.perf_counter()
                resize(num_workers)
                self.telemetry.histogram(
                    "engine_resize_seconds",
                    "Wall-clock time of an elastic pool resize").observe(
                        time.perf_counter() - t0)
            else:
                resize(num_workers)
        self.num_workers = num_workers
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "engine_pool_workers",
                "Current worker count of the runtime pool").set(num_workers)
            self._update_resident_gauges()

    def load_broadcast(self, key: Any, payload: dict) -> None:
        """Make one payload dict resident on *every* worker under ``key``.

        Broadcast payloads are the shared side tables of a query (score rows,
        supports, tie ranks): any shard may reference any entry, so each
        worker needs the whole thing -- shipped once, not per call.
        """
        backend = self._ensure_backend()
        if self.telemetry.enabled:
            t0 = time.perf_counter()
            backend.load(key, None, payload)
            self.telemetry.histogram(
                "engine_load_seconds",
                "Wall-clock time making payloads resident",
                kind="broadcast").observe(time.perf_counter() - t0)
            self._update_resident_gauges()
        else:
            backend.load(key, None, payload)

    def unload(self, key: Any) -> None:
        """Release the resident payloads stored under ``key`` on every worker."""
        if self._closed or self._backend is None:
            return
        self._backend.drop(key)
        self._update_resident_gauges()

    # -- execution -----------------------------------------------------------------

    def execute(self, fn_name: str, key: Any,
                args_per_shard: Optional[Sequence[Any]] = None) -> List[Any]:
        """Run a registered task against every resident shard of ``key``.

        ``args_per_shard`` supplies each shard's per-call arguments (``None``
        ships no arguments); results come back in shard order.
        """
        if fn_name not in _TASKS:
            raise KeyError(f"unknown runtime task: {fn_name!r}")
        if args_per_shard is None:
            args_per_shard = [None] * self.shard_count
        if len(args_per_shard) != self.shard_count:
            raise ValueError(
                f"expected {self.shard_count} argument entries, got {len(args_per_shard)}")
        tasks = [(fn_name, key, shard_idx, args)
                 for shard_idx, args in enumerate(args_per_shard)]
        return self._run_observed(fn_name, tasks)

    def map_stateless(self, fn_name: str, payloads: Sequence[Any]) -> List[Any]:
        """Run a registered task over shipped payload chunks (no residency).

        The persistent-pool replacement for
        :meth:`repro.engine.parallel.ParallelExecutor.map`: payload ``i``
        runs on worker ``i % num_workers``, results return in payload order,
        and no process is spawned per call.
        """
        if fn_name not in _TASKS:
            raise KeyError(f"unknown runtime task: {fn_name!r}")
        tasks = [(fn_name, None, None, payload) for payload in payloads]
        return self._run_observed(fn_name, tasks)

    def _run_observed(self, fn_name: str,
                      tasks: Sequence[Tuple[str, Any, Optional[int], Any]],
                      ) -> List[Any]:
        """Run one dispatch, recording its end-to-end cost when observed."""
        backend = self._ensure_backend()
        if not self.telemetry.enabled:
            return backend.run(tasks)
        self.telemetry.counter("engine_tasks_total",
                               "Tasks dispatched to the runtime",
                               task=fn_name).inc(len(tasks))
        t0 = time.perf_counter()
        results = backend.run(tasks)
        self.telemetry.histogram(
            "engine_dispatch_seconds",
            "End-to-end wall-clock time of one dispatch (all shards)",
            task=fn_name).observe(time.perf_counter() - t0)
        return results
