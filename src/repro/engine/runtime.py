"""Persistent execution runtime: a shared worker pool for all fused plans.

The parallel driver in :mod:`repro.engine.parallel` creates a fresh
``ProcessPoolExecutor`` per call: every plan execution pays worker spawn plus
a full re-ship of the data, which is why the process backend stays
spawn-dominated at interactive scale (see ``BENCH_priors.json``).  High-rate
scanners avoid exactly this trap -- ZMap/LZR keep long-lived workers over a
partitioned address space and stream work *to* the data.  The
:class:`EngineRuntime` applies the same architecture to the engine's query
plans:

* **one pool, many plans** -- workers start once per runtime and execute
  every subsequent plan (:class:`~repro.engine.fused.FusedJoinPlan`,
  :class:`~repro.engine.fused.FusedPartnerPlan`,
  :class:`~repro.engine.fused.FusedArgmaxPlan`) without respawning;
* **sharded residency** -- dictionary-encoded column payloads
  (:mod:`repro.engine.shard`) load into workers once, each worker holding its
  shard resident, so repeated builds against the same data (model -> priors
  -> prediction index in one GPS run) ship only the plan parameters, never
  the columns;
* **one dispatch protocol** -- the ``serial``, ``thread`` and ``pool``
  executors implement the same :class:`Executor` interface, so callers pick
  a backend by name and results are bit-identical across all three (the
  equivalence suites assert it).

Workers are plain interpreter processes started with the ``spawn`` method
(fork-safety on 3.12+, identical behaviour on 3.10-3.12); each owns a
dedicated inbox queue so shard ``s`` tasks always route to the worker holding
shard ``s``.  Tasks are named entries in a module-level registry -- messages
carry names and plain data, never pickled callables.

Lifecycle is explicit: :meth:`EngineRuntime.close` (idempotent) terminates
the pool, the runtime is a context manager, and a worker that dies mid-task
surfaces as a :class:`WorkerCrashError` instead of a hang.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.fused import (
    count_join_chunk,
    count_partner_chunk,
    select_argmax_chunk,
)

__all__ = [
    "EngineRuntime",
    "RUNTIME_EXECUTORS",
    "WorkerCrashError",
    "WorkerTaskError",
    "default_worker_count",
    "lpt_placement",
]

#: Executor backends an :class:`EngineRuntime` can run plans on.
RUNTIME_EXECUTORS = ("serial", "thread", "pool")

#: Packing base for the resident model fold: group keys are
#: ``(predictor id, target port)`` pairs and ports are < 65536, so
#: ``pid * 65536 + port`` is bijective and the packed counter unpacks
#: losslessly (see :func:`repro.engine.fused.packing_base`).
MODEL_PACK_BASE = 65536


def default_worker_count() -> int:
    """Default pool size: the machine's cores, capped at 4.

    The engine's folds are memory-bandwidth-light and the cap keeps the
    default footprint modest; callers with bigger machines raise
    ``num_workers`` explicitly.
    """
    return max(1, min(4, os.cpu_count() or 1))


def lpt_placement(sizes: Sequence[int], workers: int) -> List[int]:
    """Greedy least-loaded (LPT) shard placement: ``sizes[s] -> worker id``.

    Shards are visited largest first and each goes to the worker with the
    smallest load so far -- the classic longest-processing-time heuristic,
    within 4/3 of the optimal makespan.  Fully deterministic: equal sizes
    visit in shard order and load ties resolve to the lowest worker id, so
    the placement is a pure function of ``(sizes, workers)``.  With one
    shard per worker and equal sizes it degenerates to the identity
    (shard ``s`` on worker ``s``), the historical ``s % workers`` layout.

    Placement only decides *where* a shard lives; results never depend on
    it -- counter folds merge order-independently and order-sensitive
    outputs are reassembled by original index
    (:func:`repro.engine.shard.merge_ordered`).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    placement = [0] * len(sizes)
    loads = [0] * workers
    worker_range = range(workers)
    for shard_idx in sorted(range(len(sizes)), key=lambda s: (-sizes[s], s)):
        worker = min(worker_range, key=loads.__getitem__)
        placement[shard_idx] = worker
        loads[worker] += sizes[shard_idx]
    return placement


def _payload_rows(payload: dict) -> int:
    """A shard payload's row count: total entries across its list columns.

    The LPT placement's size measure.  Offset columns count too, but they
    are proportional to the member count, so relative shard weights -- all
    placement cares about -- are preserved.
    """
    return sum(len(column) for column in payload.values()
               if isinstance(column, (list, tuple)))


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; carries the worker-side traceback."""


class WorkerCrashError(RuntimeError):
    """A worker process died (signal, ``os._exit``, OOM kill) mid-request."""


# -- task registry -----------------------------------------------------------------------
#
# Every task is ``fn(shard, broadcast, args) -> result`` where ``shard`` is the
# worker-resident per-shard payload dict (or None for stateless dispatch),
# ``broadcast`` the worker-resident broadcast payload dict (or None), and
# ``args`` the per-call plain-data arguments.  Registering by name keeps
# messages free of pickled callables and makes the same registry serve the
# in-process executors and the spawned workers.


def _task_count_rows(shard: Optional[dict], broadcast: Optional[dict],
                     args: Any) -> Counter:
    """Stateless GROUP BY count over a shipped chunk of key rows."""
    return Counter(args)


def _task_join_chunk(shard: Optional[dict], broadcast: Optional[dict],
                     args: Any) -> Counter:
    """Stateless fused join+group-count over a shipped chunk payload."""
    return count_join_chunk(args)


def _task_partner_chunk(shard: Optional[dict], broadcast: Optional[dict],
                        args: Any) -> Counter:
    """Stateless fused partner-selection count over a shipped chunk payload."""
    return count_partner_chunk(args)


def _task_argmax_chunk(shard: Optional[dict], broadcast: Optional[dict],
                       args: Any) -> List[Tuple[int, int, float]]:
    """Stateless fused argmax selection over a shipped chunk payload."""
    return select_argmax_chunk(args)


def _derive_model_join(shard: dict) -> Tuple[Any, ...]:
    """Derive the resident model-build join payload from host-group columns.

    The co-occurrence query over one shard of hosts is a self-join local to
    the shard: the left side streams one row per (host, port, predictor id),
    the right index maps each shard-local host to its ``(port,)`` rows, and
    the left-vs-right exclusion drops the self-pairs.  Group keys are
    ``(predictor id, target port)`` packed into one int (ports < 65536), so
    the fold runs :func:`~repro.engine.fused.count_join_chunk`'s packed fast
    path.  Derivation happens worker-side on first use and is cached in the
    resident shard, so repeated model builds skip it entirely.
    """
    member_starts = shard["member_starts"]
    labels = shard["labels"]
    value_starts = shard["value_starts"]
    value_ids = shard["value_ids"]
    left_host: List[int] = []
    left_port: List[int] = []
    left_pid: List[int] = []
    index: Dict[int, List[Tuple[int]]] = {}
    for g in range(len(member_starts) - 1):
        m_lo, m_hi = member_starts[g], member_starts[g + 1]
        if m_lo == m_hi:
            continue
        index[g] = [(labels[m],) for m in range(m_lo, m_hi)]
        for m in range(m_lo, m_hi):
            port = labels[m]
            for v in range(value_starts[m], value_starts[m + 1]):
                left_host.append(g)
                left_port.append(port)
                left_pid.append(value_ids[v])
    return ([left_host], [(0, left_pid)], ("LR", left_port, 0), [(1, 0)], 2,
            index, MODEL_PACK_BASE)


def _task_model_pairs(shard: dict, broadcast: Optional[dict],
                      args: Any) -> Counter:
    """Resident co-occurrence fold: packed (predictor id, port) counts."""
    payload = shard.get("_model_join")
    if payload is None:
        payload = shard["_model_join"] = _derive_model_join(shard)
    return count_join_chunk(payload)


def _task_model_denominators(shard: dict, broadcast: Optional[dict],
                             args: Any) -> Counter:
    """Resident denominator fold: predictor-id occurrence counts."""
    return Counter(shard["value_ids"])


def _task_priors_partner(shard: dict, broadcast: dict, args: Any) -> Counter:
    """Resident priors fold: partner counts over the shard's host groups.

    ``args`` is ``(allowed_labels,)``; the score tables come from the
    broadcast model sides, everything else is already resident.
    """
    (allowed,) = args
    payload = (shard["group_keys"], shard["member_starts"], shard["labels"],
               shard["value_starts"], shard["value_ids"],
               broadcast["target_counts"], broadcast["denominators"], allowed)
    return count_partner_chunk(payload)


def _task_index_argmax(shard: dict, broadcast: dict,
                       args: Any) -> List[Tuple[int, List[Tuple[int, int, float]]]]:
    """Resident argmax fold, one selection per group, tagged for re-ordering.

    Hash-sharding permutes group order, but the prediction-index build is
    order-sensitive (the serial winner list is the oracle), so each group's
    winners come back tagged with the group's original index and the driver
    merges via :func:`repro.engine.shard.merge_ordered`.
    """
    allowed, min_support, cutoff = args
    target_counts = broadcast["target_counts"]
    denominators = broadcast["denominators"]
    tie_ranks = broadcast["tie_ranks"]
    member_starts = shard["member_starts"]
    labels = shard["labels"]
    value_starts = shard["value_starts"]
    value_ids = shard["value_ids"]
    out: List[Tuple[int, List[Tuple[int, int, float]]]] = []
    for local, original in enumerate(shard["group_order"]):
        m_lo, m_hi = member_starts[local], member_starts[local + 1]
        if m_hi - m_lo < 2:
            continue
        v_lo, v_hi = value_starts[m_lo], value_starts[m_hi]
        winners = select_argmax_chunk((
            (m_lo, m_hi), labels[m_lo:m_hi], value_starts[m_lo:m_hi + 1],
            value_ids[v_lo:v_hi], target_counts, denominators, tie_ranks,
            allowed, min_support, cutoff,
        ))
        if winners:
            out.append((original, winners))
    return out


def _task_probe(shard: Optional[dict], broadcast: Optional[dict],
                args: Any) -> Tuple[int, List[str]]:
    """Introspection task for tests: worker pid + resident shard columns."""
    resident = sorted(shard) if shard is not None else []
    return os.getpid(), resident


def _task_crash(shard: Optional[dict], broadcast: Optional[dict], args: Any) -> None:
    """Crash drill: kill the worker process without a reply.

    Exercises the crash-detection path (lifecycle tests, operational
    drills).  Gated behind an environment variable so ordinary API misuse
    cannot hard-kill a pool: without the opt-in the task fails like any
    other task error.
    """
    if os.environ.get("REPRO_RUNTIME_CRASH_TEST") != "1":
        raise RuntimeError(
            "the crash drill requires REPRO_RUNTIME_CRASH_TEST=1 in the "
            "worker environment")
    os._exit(17)


_TASKS: Dict[str, Callable[[Optional[dict], Optional[dict], Any], Any]] = {
    "count_rows": _task_count_rows,
    "join_chunk": _task_join_chunk,
    "partner_chunk": _task_partner_chunk,
    "argmax_chunk": _task_argmax_chunk,
    "model_pairs": _task_model_pairs,
    "model_denominators": _task_model_denominators,
    "priors_partner": _task_priors_partner,
    "index_argmax": _task_index_argmax,
    "_probe": _task_probe,
    "_crash": _task_crash,
}


# -- worker process ----------------------------------------------------------------------


def _worker_main(worker_id: int, inbox: Any, outbox: Any) -> None:
    """Worker loop: hold resident payloads, execute named tasks against them.

    Messages are plain tuples.  Requests: ``("load", task_id, key, shard_idx,
    payload)`` merges ``payload`` into the resident store (``shard_idx`` is
    ``None`` for broadcast payloads), ``("run", task_id, fn, key, shard_idx,
    args)`` executes a registered task, ``("drop", task_id, key)`` releases a
    key's payloads, ``("close",)`` exits.  Replies: ``("ok", worker_id,
    task_id, result)`` or ``("err", worker_id, task_id, description)``.
    """
    store: Dict[Tuple[Any, Optional[int]], dict] = {}
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "close":
            break
        task_id = message[1]
        try:
            if kind == "load":
                _, _, key, shard_idx, payload = message
                store.setdefault((key, shard_idx), {}).update(payload)
                outbox.put(("ok", worker_id, task_id, None))
            elif kind == "run":
                _, _, fn_name, key, shard_idx, args = message
                shard = store.get((key, shard_idx)) if key is not None else None
                broadcast = store.get((key, None)) if key is not None else None
                if key is not None and shard is None and broadcast is None:
                    raise KeyError(f"no resident payload for key {key!r}")
                result = _TASKS[fn_name](shard, broadcast, args)
                outbox.put(("ok", worker_id, task_id, result))
            elif kind == "drop":
                _, _, key = message
                for resident_key in [k for k in store if k[0] == key]:
                    del store[resident_key]
                outbox.put(("ok", worker_id, task_id, None))
            else:
                raise ValueError(f"unknown message kind: {kind!r}")
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            outbox.put(("err", worker_id, task_id, detail))


# -- executors ---------------------------------------------------------------------------


class Executor:
    """Dispatch protocol every runtime backend implements.

    ``load`` makes a payload resident (per-shard or, with ``shard_idx=None``,
    broadcast to every worker), ``run`` executes a batch of named tasks and
    returns their results in order, ``drop`` releases a key, ``close`` tears
    the backend down.  A shard's tasks are always served by the worker
    holding the shard resident -- the pool backend records a per-key
    placement (least-loaded by shard row count, see :func:`lpt_placement`)
    when the shards load, which is what makes residency meaningful under
    skew.  ``broken`` reports an unrecoverable backend (a crashed pool):
    the only valid next step is ``close`` and a fresh runtime.
    """

    broken = False

    def load(self, key: Any, shard_idx: Optional[int], payload: dict) -> None:
        raise NotImplementedError

    def load_shards(self, key: Any, payloads: Sequence[dict]) -> None:
        """Load payload ``s`` onto shard ``s``'s worker (batched where possible)."""
        for shard_idx, payload in enumerate(payloads):
            self.load(key, shard_idx, payload)

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        """Execute ``(fn_name, key, shard_idx, args)`` tasks, results in order."""
        raise NotImplementedError

    def drop(self, key: Any) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Runs every task inline in the calling thread (the reference backend)."""

    def __init__(self) -> None:
        self._store: Dict[Tuple[Any, Optional[int]], dict] = {}

    def _resolve(self, key: Any, shard_idx: Optional[int]):
        if key is None:
            return None, None
        shard = self._store.get((key, shard_idx))
        broadcast = self._store.get((key, None))
        if shard is None and broadcast is None:
            raise KeyError(f"no resident payload for key {key!r}")
        return shard, broadcast

    def load(self, key: Any, shard_idx: Optional[int], payload: dict) -> None:
        self._store.setdefault((key, shard_idx), {}).update(payload)

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        results = []
        for fn_name, key, shard_idx, args in tasks:
            shard, broadcast = self._resolve(key, shard_idx)
            results.append(_TASKS[fn_name](shard, broadcast, args))
        return results

    def drop(self, key: Any) -> None:
        for resident_key in [k for k in self._store if k[0] == key]:
            del self._store[resident_key]

    def close(self) -> None:
        self._store.clear()


class ThreadExecutor(SerialExecutor):
    """Runs tasks on a persistent thread pool over the shared in-process store.

    Residency is trivial (one address space), so this backend mainly
    validates the dispatch/sharding logic and serves workloads whose folds
    release the GIL; the resident store is only read during ``run``.
    """

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        import concurrent.futures

        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        def _one(task):
            fn_name, key, shard_idx, args = task
            shard, broadcast = self._resolve(key, shard_idx)
            return _TASKS[fn_name](shard, broadcast, args)

        return list(self._pool.map(_one, tasks))

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        super().close()


class PoolExecutor(Executor):
    """Runs tasks on a persistent pool of spawned worker processes.

    Each worker owns a dedicated inbox queue, so tasks for shard ``s`` always
    land on the worker whose store holds shard ``s``; replies come back on
    one shared outbox.  Workers start with the ``spawn`` method (stable
    across Python 3.10-3.12, immune to the 3.12+ fork-in-threads
    deprecation) and live until :meth:`close`.  A worker that dies
    mid-request is detected by liveness polling and surfaces as
    :class:`WorkerCrashError`; the pool is then torn down so no queue is
    left blocking interpreter exit.
    """

    _POLL_SECONDS = 0.05

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._context = multiprocessing.get_context("spawn")
        self._processes: List[Any] = []
        self._inboxes: List[Any] = []
        self._outbox: Optional[Any] = None
        self._next_task_id = 0
        self._started = False
        self._broken = False
        # Per-key shard placement decided at load_shards time (greedy
        # least-loaded by shard row count); shard tasks must route to the
        # worker actually holding the shard, so the map lives for exactly
        # as long as the resident data does.
        self._placements: Dict[Any, List[int]] = {}

    @property
    def broken(self) -> bool:
        return self._broken

    # -- pool management -----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._broken:
            raise WorkerCrashError("runtime pool is broken after a worker crash")
        if self._started:
            return
        self._outbox = self._context.Queue()
        for worker_id in range(self.workers):
            inbox = self._context.Queue()
            process = self._context.Process(
                target=_worker_main, args=(worker_id, inbox, self._outbox),
                daemon=True, name=f"engine-runtime-{worker_id}",
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)
        self._started = True

    def _abandon(self) -> None:
        """Terminate everything after a crash; the pool is unusable."""
        self._broken = True
        self._placements.clear()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=2.0)
        self._drain_queues()

    def _drain_queues(self) -> None:
        for inbox in self._inboxes:
            inbox.close()
            inbox.cancel_join_thread()
        if self._outbox is not None:
            self._outbox.close()
            self._outbox.cancel_join_thread()
        self._inboxes = []
        self._processes = []
        self._outbox = None

    def _send(self, worker_id: int, message: Tuple[Any, ...]) -> None:
        self._inboxes[worker_id].put(message)

    def _collect(self, expected: Dict[int, int]) -> Dict[int, Any]:
        """Await one reply per expected task id; crash -> clean error.

        ``expected`` maps task id to the worker it was sent to, so a dead
        process can be reported by name instead of hanging on the queue.  A
        task that *raises* is not pool-fatal: the worker loop survives, so
        every outstanding reply is drained first (no stale messages can leak
        into the next request) and then one :class:`WorkerTaskError` is
        raised.  Only a worker that *dies* abandons the pool.
        """
        results: Dict[int, Any] = {}
        errors: List[str] = []
        while len(results) < len(expected):
            try:
                reply = self._outbox.get(timeout=self._POLL_SECONDS)
            except queue_module.Empty:
                dead = [i for i, p in enumerate(self._processes) if not p.is_alive()]
                pending_on_dead = [tid for tid, wid in expected.items()
                                   if wid in dead and tid not in results]
                if pending_on_dead:
                    codes = {i: self._processes[i].exitcode for i in dead}
                    self._abandon()
                    raise WorkerCrashError(
                        f"engine runtime worker(s) {sorted(set(dead))} died "
                        f"(exit codes {codes}) while {len(pending_on_dead)} "
                        f"task(s) were outstanding; the pool has been shut down"
                    ) from None
                continue
            status, _, task_id, payload = reply
            if status == "err":
                errors.append(payload)
                results[task_id] = None
            else:
                results[task_id] = payload
        if errors:
            raise WorkerTaskError(
                f"engine runtime task failed in worker:\n{errors[0]}")
        return results

    def _worker_for(self, shard_idx: Optional[int], position: int,
                    key: Any = None) -> int:
        """The worker serving a task: stateless work round-robins by
        position; shard tasks follow the key's recorded placement (falling
        back to ``shard % workers`` for keys loaded shard-by-shard)."""
        if shard_idx is None:
            return position % self.workers
        placement = self._placements.get(key) if key is not None else None
        if placement is not None and shard_idx < len(placement):
            return placement[shard_idx]
        return shard_idx % self.workers

    # -- Executor interface --------------------------------------------------------

    def load(self, key: Any, shard_idx: Optional[int], payload: dict) -> None:
        self._ensure_started()
        if shard_idx is None:
            expected: Dict[int, int] = {}
            for worker_id in range(self.workers):
                task_id = self._next_task_id
                self._next_task_id += 1
                self._send(worker_id, ("load", task_id, key, None, payload))
                expected[task_id] = worker_id
            self._collect(expected)
        else:
            worker_id = self._worker_for(shard_idx, 0, key)
            task_id = self._next_task_id
            self._next_task_id += 1
            self._send(worker_id, ("load", task_id, key, shard_idx, payload))
            self._collect({task_id: worker_id})

    def load_shards(self, key: Any, payloads: Sequence[dict]) -> None:
        """Batched shard load: all sends first, one collect, so workers
        deserialize their shards concurrently instead of one after another.

        The first load of a key also decides its shard placement: greedy
        least-loaded (LPT) over the payloads' row counts, so a skewed
        universe's heavy shards spread across workers instead of landing
        wherever ``shard % num_workers`` happens to point.  Re-loading an
        already-placed key keeps the existing placement (the merge must
        land on the workers already holding the shards).
        """
        self._ensure_started()
        if key not in self._placements:
            self._placements[key] = lpt_placement(
                [_payload_rows(payload) for payload in payloads], self.workers)
        expected: Dict[int, int] = {}
        for shard_idx, payload in enumerate(payloads):
            worker_id = self._worker_for(shard_idx, 0, key)
            task_id = self._next_task_id
            self._next_task_id += 1
            self._send(worker_id, ("load", task_id, key, shard_idx, payload))
            expected[task_id] = worker_id
        self._collect(expected)

    def run(self, tasks: Sequence[Tuple[str, Any, Optional[int], Any]]) -> List[Any]:
        self._ensure_started()
        expected: Dict[int, int] = {}
        order: List[int] = []
        for position, (fn_name, key, shard_idx, args) in enumerate(tasks):
            worker_id = self._worker_for(shard_idx, position, key)
            task_id = self._next_task_id
            self._next_task_id += 1
            self._send(worker_id, ("run", task_id, fn_name, key, shard_idx, args))
            expected[task_id] = worker_id
            order.append(task_id)
        results = self._collect(expected)
        return [results[task_id] for task_id in order]

    def drop(self, key: Any) -> None:
        self._placements.pop(key, None)
        if not self._started or self._broken:
            return
        expected: Dict[int, int] = {}
        for worker_id in range(self.workers):
            task_id = self._next_task_id
            self._next_task_id += 1
            self._send(worker_id, ("drop", task_id, key))
            expected[task_id] = worker_id
        self._collect(expected)

    def close(self) -> None:
        if not self._started:
            return
        if not self._broken:
            for worker_id, process in enumerate(self._processes):
                if process.is_alive():
                    try:
                        self._send(worker_id, ("close",))
                    except (OSError, ValueError):
                        pass
            for process in self._processes:
                process.join(timeout=2.0)
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
        self._drain_queues()
        self._placements.clear()
        self._started = False


# -- the runtime -------------------------------------------------------------------------


class EngineRuntime:
    """A persistent, shard-aware execution runtime for fused query plans.

    One runtime owns one executor backend (``serial``, ``thread`` or
    ``pool``) for its whole life: workers start once (lazily, on first use)
    and every plan execution reuses them.  Data ships through
    :meth:`load_shards` / :meth:`load_broadcast` and stays resident in the
    workers under a caller-chosen key; :meth:`execute` then runs a registered
    task against each resident shard, shipping only per-call arguments.
    :meth:`map_stateless` covers the classic scatter path (payload chunks
    shipped per call) for plans whose data is not resident -- still on the
    warm pool, so per-call process spawn is gone either way.

    Results are bit-identical across backends and shard counts: counter
    tasks merge order-independently, and order-sensitive tasks come back
    tagged for exact re-ordering (see
    :func:`repro.engine.shard.merge_ordered`).

    Lifecycle: :meth:`close` is explicit and idempotent; the runtime is a
    context manager; using a closed (or crashed) runtime raises instead of
    hanging.
    """

    def __init__(self, executor: str = "serial", num_workers: int = 0,
                 shard_count: int = 0) -> None:
        """Configure the runtime (workers start lazily on first use).

        Args:
            executor: ``"serial"``, ``"thread"`` or ``"pool"``.
            num_workers: pool size; ``0`` means :func:`default_worker_count`.
            shard_count: shards resident datasets are partitioned into;
                ``0`` means one shard per worker.  More shards than workers
                is valid (workers own several shards each, placed
                least-loaded by row count at load time -- see
                :func:`lpt_placement` -- which is what keeps skewed
                universes balanced).
        """
        if executor not in RUNTIME_EXECUTORS:
            raise ValueError(
                f"unknown executor: {executor!r} (expected one of {RUNTIME_EXECUTORS})")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 selects the default)")
        if shard_count < 0:
            raise ValueError("shard_count must be >= 0 (0 selects one per worker)")
        self.executor = executor
        self.num_workers = num_workers or (1 if executor == "serial"
                                           else default_worker_count())
        self.shard_count = shard_count or self.num_workers
        self._backend: Optional[Executor] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def broken(self) -> bool:
        """True after a worker crash made the pool unusable.

        A broken runtime fails fast on every further dispatch; the recovery
        path is :meth:`close` plus a fresh runtime (the GPS orchestrator does
        this automatically on its next :meth:`~repro.core.gps.GPS.runtime`
        call).
        """
        return self._backend is not None and self._backend.broken

    @property
    def wants_encoded_payloads(self) -> bool:
        """True when payloads cross a process boundary (encode before shipping)."""
        return self.executor == "pool"

    def _ensure_backend(self) -> Executor:
        if self._closed:
            raise RuntimeError("engine runtime is closed")
        if self._backend is None:
            if self.executor == "serial":
                self._backend = SerialExecutor()
            elif self.executor == "thread":
                self._backend = ThreadExecutor(self.num_workers)
            else:
                self._backend = PoolExecutor(self.num_workers)
        return self._backend

    def close(self) -> None:
        """Tear the worker pool down; idempotent, safe after a crash."""
        if self._closed:
            return
        self._closed = True
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "EngineRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- resident data -------------------------------------------------------------

    def load_shards(self, key: Any, shard_payloads: Sequence[dict]) -> None:
        """Make per-shard payload dicts resident under ``key``.

        ``shard_payloads`` must have exactly ``shard_count`` entries.  The
        pool backend places shards greedily least-loaded by row count
        (:func:`lpt_placement`; balanced equal-size layouts reduce to the
        round-robin ``s % num_workers``), and each shard stays resident on
        its worker until :meth:`unload` -- the "ship the data once"
        contract callers like
        :class:`repro.core.runtime_plans.ResidentHostGroups` build on.
        Loading the same key again merges (and for colliding column names
        replaces) payload entries on the workers already holding them.
        """
        if len(shard_payloads) != self.shard_count:
            raise ValueError(
                f"expected {self.shard_count} shard payloads, got {len(shard_payloads)}")
        self._ensure_backend().load_shards(key, shard_payloads)

    def load_broadcast(self, key: Any, payload: dict) -> None:
        """Make one payload dict resident on *every* worker under ``key``.

        Broadcast payloads are the shared side tables of a query (score rows,
        supports, tie ranks): any shard may reference any entry, so each
        worker needs the whole thing -- shipped once, not per call.
        """
        self._ensure_backend().load(key, None, payload)

    def unload(self, key: Any) -> None:
        """Release the resident payloads stored under ``key`` on every worker."""
        if self._closed or self._backend is None:
            return
        self._backend.drop(key)

    # -- execution -----------------------------------------------------------------

    def execute(self, fn_name: str, key: Any,
                args_per_shard: Optional[Sequence[Any]] = None) -> List[Any]:
        """Run a registered task against every resident shard of ``key``.

        ``args_per_shard`` supplies each shard's per-call arguments (``None``
        ships no arguments); results come back in shard order.
        """
        if fn_name not in _TASKS:
            raise KeyError(f"unknown runtime task: {fn_name!r}")
        if args_per_shard is None:
            args_per_shard = [None] * self.shard_count
        if len(args_per_shard) != self.shard_count:
            raise ValueError(
                f"expected {self.shard_count} argument entries, got {len(args_per_shard)}")
        tasks = [(fn_name, key, shard_idx, args)
                 for shard_idx, args in enumerate(args_per_shard)]
        return self._ensure_backend().run(tasks)

    def map_stateless(self, fn_name: str, payloads: Sequence[Any]) -> List[Any]:
        """Run a registered task over shipped payload chunks (no residency).

        The persistent-pool replacement for
        :meth:`repro.engine.parallel.ParallelExecutor.map`: payload ``i``
        runs on worker ``i % num_workers``, results return in payload order,
        and no process is spawned per call.
        """
        if fn_name not in _TASKS:
            raise KeyError(f"unknown runtime task: {fn_name!r}")
        tasks = [(fn_name, None, None, payload) for payload in payloads]
        return self._ensure_backend().run(tasks)
