"""Sharding encoded columns for the persistent execution runtime.

The parallel driver in :mod:`repro.engine.parallel` scatters *contiguous
chunks*: cheap to slice, but meaningless as an identity -- chunk boundaries
move whenever the worker count does, so a worker can never keep "its" chunk
around between calls.  The persistent runtime (:mod:`repro.engine.runtime`)
needs the opposite: a partitioning that is a stable property of the *data*,
so each worker can hold its shard resident and later plan executions ship
nothing but the plan.

:func:`shard_assignments` provides that identity: rows (or groups) are
assigned to shards by :func:`repro.engine.encoding.stable_hash`, which does
not vary with ``PYTHONHASHSEED``, so the shard a row lands in is reproducible
across interpreter invocations and independent of worker count (workers own
whole shards -- placed least-loaded by row count at load time -- so changing
the worker count re-distributes shards, never splits them).

Two layouts are sharded:

* :func:`shard_columns` -- flat named columns (the join operator's streamed
  side): rows scatter by the hash of a key column, and parallel columns stay
  row-aligned within each shard.
* :func:`shard_group_columns` -- group-structured columns (the partner /
  argmax operators' flattening: groups own contiguous member runs, members
  own contiguous value runs): whole groups scatter by the hash of a per-group
  assignment key, and each shard's offset columns are rebuilt locally (they
  start at 0, so no rebasing is needed worker-side).  ``group_order`` records
  every group's original index, letting drivers reassemble order-sensitive
  results (the argmax winner list) bit-identically to the serial fold.

Both return a :class:`ShardedColumns`: one dict of plain-data columns per
shard, ready to ship to (and stay resident in) a runtime worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.engine.columns import IntColumn
from repro.engine.encoding import stable_hash

__all__ = [
    "ShardedColumns",
    "merge_ordered",
    "shard_assignments",
    "shard_columns",
    "shard_group_columns",
]


@dataclass(frozen=True)
class ShardedColumns:
    """Columns partitioned into shards, each a plain-data payload dict.

    Attributes:
        shard_count: number of shards (every list below has this length).
        shards: per-shard ``{column name -> list}`` payloads, each held
            resident by the runtime worker the pool's load-time placement
            assigns it (least-loaded by row count; see
            :func:`repro.engine.runtime.lpt_placement`).
    """

    shard_count: int
    shards: Tuple[Dict[str, Any], ...]

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if len(self.shards) != self.shard_count:
            raise ValueError("shards must have exactly shard_count entries")

    def __len__(self) -> int:
        return self.shard_count


def shard_assignments(keys: Sequence[Any], shard_count: int) -> List[int]:
    """Assign each key to a shard by its stable hash.

    The assignment is a pure function of the key values and ``shard_count``
    -- independent of ``PYTHONHASHSEED``, worker count and enumeration order
    -- so re-sharding the same data always reproduces the same layout.
    Integer keys (dictionary-encoded ids, IPv4 addresses) hash to themselves
    and spread round-robin with perfect balance.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if shard_count == 1:
        return [0] * len(keys)
    return [stable_hash(key) % shard_count for key in keys]


def shard_columns(columns: Mapping[str, Sequence[Any]], key: str,
                  shard_count: int) -> ShardedColumns:
    """Partition flat row-aligned columns by the stable hash of ``key``.

    Every column must be parallel to ``columns[key]``; rows keep their
    relative order within a shard, and each shard's columns stay row-aligned.
    Row order across shards is *not* preserved -- this layout is for
    order-insensitive folds (counters), which is exactly what the fused join
    produces.
    """
    key_col = columns[key]
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(key_col):
            raise ValueError(f"column {name!r} is not aligned with key column {key!r}")
    assignments = shard_assignments(key_col, shard_count)
    shards: List[Dict[str, Any]] = [{name: [] for name in names}
                                    for _ in range(shard_count)]
    appends = [[shard[name].append for name in names] for shard in shards]
    for i, shard_idx in enumerate(assignments):
        row_appends = appends[shard_idx]
        for j, name in enumerate(names):
            row_appends[j](columns[name][i])
    return ShardedColumns(shard_count=shard_count, shards=tuple(shards))


def shard_group_columns(
        assign_keys: Sequence[Any],
        group_keys: Sequence[int],
        member_starts: Sequence[int],
        labels: Sequence[int],
        value_starts: Sequence[int],
        value_ids: Sequence[int],
        shard_count: int,
) -> ShardedColumns:
    """Partition group-structured columns (the partner/argmax flattening).

    Args:
        assign_keys: one hashable per group; the group's shard is
            ``stable_hash(assign_keys[g]) % shard_count``.  Callers pick an
            identity that is unique-ish per group (the host address) so load
            balances even when many groups share a ``group_keys`` value.
        group_keys: one key per group (the priors planner's subnet key).
        member_starts: group ``g`` owns members
            ``member_starts[g]:member_starts[g + 1]``.
        labels: per-member label, parallel to the member index space.
        value_starts: member ``m`` owns values
            ``value_starts[m]:value_starts[m + 1]``.
        value_ids: dictionary-encoded values.
        shard_count: number of shards to produce.

    Each shard payload holds locally-rebuilt ``group_keys`` / ``member_starts``
    / ``labels`` / ``value_starts`` / ``value_ids`` columns (offsets start at
    0) plus ``group_order``: the original index of every group in the shard,
    ascending, so order-sensitive results can be merged back into the exact
    serial order.

    Payload columns are returned as :class:`~repro.engine.columns.IntColumn`
    buffers: a resident shard is one machine-native allocation per column
    (not a list of boxed ints), the thread executor's workers read the
    buffers zero-copy, and shipping a shard to a pool worker pickles each
    column as a single contiguous ``tobytes()`` blob instead of one object
    per element.
    """
    group_count = len(group_keys)
    if len(assign_keys) != group_count:
        raise ValueError("assign_keys must have one entry per group")
    if len(member_starts) != group_count + 1:
        raise ValueError("member_starts must have len(group_keys) + 1 entries")
    assignments = shard_assignments(assign_keys, shard_count)
    shards: List[Dict[str, Any]] = [
        {"group_order": [], "group_keys": [], "member_starts": [0],
         "labels": [], "value_starts": [0], "value_ids": []}
        for _ in range(shard_count)
    ]
    for g in range(group_count):
        shard = shards[assignments[g]]
        shard["group_order"].append(g)
        shard["group_keys"].append(group_keys[g])
        m_lo, m_hi = member_starts[g], member_starts[g + 1]
        shard_labels = shard["labels"]
        shard_value_starts = shard["value_starts"]
        shard_value_ids = shard["value_ids"]
        for m in range(m_lo, m_hi):
            shard_labels.append(labels[m])
            shard_value_ids.extend(value_ids[value_starts[m]:value_starts[m + 1]])
            shard_value_starts.append(len(shard_value_ids))
        shard["member_starts"].append(len(shard_labels))
    # Scatter into plain lists above (cheapest append path), then freeze each
    # shard's columns into machine-native buffers exactly once.
    frozen = tuple(
        {name: IntColumn(column) for name, column in shard.items()}
        for shard in shards
    )
    return ShardedColumns(shard_count=shard_count, shards=frozen)


def merge_ordered(per_shard_results: Sequence[Sequence[Tuple[int, Any]]]) -> List[Any]:
    """Merge per-shard ``(original_index, item)`` pairs back into global order.

    The inverse of hash-sharding for order-sensitive outputs: each shard
    reports its items tagged with the original index recorded in
    ``group_order``, and the merged list is identical to what a serial pass
    over the unsharded data would have produced.

    This is also what makes crash recovery invisible to results: when the
    pool respawns a dead worker and re-runs its shard's fold, the re-run
    reports the same ``(original_index, item)`` pairs the first attempt
    would have (tasks are pure functions of the resident shard), so the
    merged order -- and therefore every downstream artifact -- is
    bit-identical whether or not a crash happened mid-build.
    """
    tagged: List[Tuple[int, Any]] = []
    for results in per_shard_results:
        tagged.extend(results)
    tagged.sort(key=lambda pair: pair[0])
    return [item for _, item in tagged]
