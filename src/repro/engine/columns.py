"""Machine-native column storage and the numpy kernel feature gate.

Hot columns (:class:`~repro.scanner.records.ObservationBatch`,
:class:`~repro.core.features.HostFeatureColumns`, the resident shard payloads
of :mod:`repro.engine.shard`) are backed by :class:`IntColumn` -- a signed
64-bit :class:`array.array` subclass -- instead of Python lists.  An
``array('q')`` stores one machine word per element (a list stores a pointer
to a boxed ``int``), pickles as a single contiguous byte buffer (one
``tobytes()`` per column when a shard ships to a pool worker, instead of one
object per element), and exports the buffer protocol, so bulk kernels can
fold over it without ever materializing Python ints:

* ``memoryview(column)`` is a zero-copy typed view (what the thread executor
  shares between workers);
* ``numpy.frombuffer(column, dtype=int64)`` is a zero-copy ndarray view
  (what the vectorized kernels in :mod:`repro.engine.fused` fold over).

Two kernel backends exist and the **stdlib one is the default and the
equivalence oracle**: pure-Python folds over the buffers, no third-party
imports.  The optional ``numpy`` backend vectorizes the same folds with
ufuncs -- numpy releases the GIL inside its C loops, which is what finally
lets the ``thread`` executor beat ``serial`` on the model-build fold.  The
gate is explicit: the ``REPRO_COLUMN_BACKEND`` environment variable
(``stdlib`` | ``numpy``) or the ``GPSConfig.column_backend`` field, resolved
through :func:`resolve_column_backend`.  Requesting ``numpy`` where the wheel
is missing is an error, never a silent fallback -- a benchmark that asked
for the vector path must not quietly measure the interpreter.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Optional

__all__ = [
    "COLUMN_BACKEND_ENV",
    "COLUMN_BACKENDS",
    "ColumnView",
    "INT64_MAX",
    "INT64_MIN",
    "IntColumn",
    "as_numpy",
    "numpy_available",
    "require_numpy",
    "resolve_column_backend",
    "to_numpy",
]

#: Kernel backends a column fold can run on.
COLUMN_BACKENDS = ("stdlib", "numpy")

#: Environment variable selecting the default kernel backend.
COLUMN_BACKEND_ENV = "REPRO_COLUMN_BACKEND"

#: The value range an :class:`IntColumn` element can hold.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

try:  # numpy is optional; its absence just disables the numpy backend.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less interpreters
    _np = None


class IntColumn(array):
    """A signed 64-bit integer column: ``array('q')`` with sequence equality.

    Construction takes just the values (the typecode is fixed), and ``==``
    compares element-wise against lists and tuples as well as arrays, so
    column-backed containers stay drop-in comparable with the object-path
    oracles that produce plain lists.  Everything else -- ``append`` /
    ``extend`` folding, slicing, pickling, iteration, the buffer protocol --
    is inherited from :class:`array.array` unchanged.

    Elements must fit in int64 (:data:`INT64_MIN` .. :data:`INT64_MAX`);
    out-of-range values raise ``OverflowError`` at insert time, which is the
    point: every consumer downstream (the packed fold kernels, numpy views,
    shard shipping) assumes machine words.
    """

    __slots__ = ()

    def __new__(cls, values: Iterable[int] = ()) -> "IntColumn":
        return super().__new__(cls, "q", values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return array.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    # Columns are mutable buffers; like lists and arrays they are unhashable.
    __hash__ = None


class ColumnView:
    """A read-only typed column over externally-owned memory (mmap, bytes).

    The zero-parse side of the snapshot story
    (:mod:`repro.engine.snapshot`): a column file opened through ``mmap``
    wraps in a view without copying or decoding a single element -- the
    kernel's page cache *is* the column storage, shared across every process
    that maps the same file.  The view quacks like the read side of
    :class:`IntColumn`: ``len`` / indexing / slicing / iteration /
    ``tolist()`` / element-wise ``==`` against lists and arrays, plus
    ``memoryview(view)`` and :func:`as_numpy` zero-copy access for the bulk
    kernels.  Mutation is structurally impossible -- there is no ``append``
    and the underlying buffer is mapped read-only.

    Pickling materializes into a plain :class:`IntColumn` (a process cannot
    ship its address space); the pool's snapshot path never pickles views --
    workers receive file references and open their own maps.

    Args:
        buffer: any buffer-protocol object (``mmap.mmap``, ``bytes``,
            ``memoryview``) whose size is a whole number of elements.
        typecode: ``array`` typecode of the elements; ``"q"`` (int64, the
            :class:`IntColumn` layout) or ``"d"`` (float64, the snapshot's
            probability columns).
    """

    __slots__ = ("_buffer", "_view", "typecode")

    def __init__(self, buffer, typecode: str = "q") -> None:
        if typecode not in ("q", "d"):
            raise ValueError(f"unsupported column typecode: {typecode!r}")
        raw = memoryview(buffer).cast("B")
        itemsize = array(typecode).itemsize
        if raw.nbytes % itemsize:
            raise ValueError(
                f"buffer of {raw.nbytes} bytes is not a whole number of "
                f"{itemsize}-byte elements")
        self._buffer = buffer  # pins the mmap for the view's lifetime
        self._view = raw.cast(typecode)
        self.typecode = typecode

    def __len__(self) -> int:
        return len(self._view)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return self._view[item].tolist()
        return self._view[item]

    def __iter__(self):
        return iter(self._view)

    def __buffer__(self, flags):  # Python 3.12+ buffer protocol hook
        return memoryview(self._view)

    @property
    def raw(self):
        """The typed memoryview itself (buffer-protocol on every Python)."""
        return self._view

    @property
    def nbytes(self) -> int:
        return self._view.nbytes

    def tolist(self) -> list:
        return self._view.tolist()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, array, ColumnView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    __hash__ = None

    def __reduce__(self):
        # Cross-process transport falls back to a materialized copy; the
        # mmap sharing that makes views cheap is same-machine-file, not
        # pickle, territory.
        if self.typecode == "q":
            return (IntColumn, (self.tolist(),))
        return (array, ("d", self.tolist()))

    def __repr__(self) -> str:
        return f"ColumnView(typecode={self.typecode!r}, len={len(self)})"


def numpy_available() -> bool:
    """Whether the optional numpy kernel backend can be used at all."""
    return _np is not None


def resolve_column_backend(override: Optional[str] = None) -> str:
    """Resolve the kernel backend: explicit override, else env var, else stdlib.

    Args:
        override: a backend name from :data:`COLUMN_BACKENDS` or ``None`` to
            fall through to the ``REPRO_COLUMN_BACKEND`` environment variable
            (itself defaulting to ``"stdlib"``).

    Raises:
        ValueError: unknown backend name (wherever it came from).
        RuntimeError: the numpy backend was requested but numpy is not
            importable -- requested vectorization never silently degrades.
    """
    backend = override if override is not None else os.environ.get(
        COLUMN_BACKEND_ENV, "stdlib")
    if backend not in COLUMN_BACKENDS:
        raise ValueError(
            f"unknown column backend: {backend!r} "
            f"(expected one of {COLUMN_BACKENDS})")
    if backend == "numpy" and _np is None:
        raise RuntimeError(
            "column backend 'numpy' requested "
            f"(override or ${COLUMN_BACKEND_ENV}) but numpy is not installed; "
            "install numpy or select the 'stdlib' backend")
    return backend


def require_numpy():
    """The numpy module itself, for vectorized kernels that resolved the gate.

    Raises:
        RuntimeError: numpy is not importable (the caller should have gated
            on :func:`resolve_column_backend` first).
    """
    if _np is None:
        raise RuntimeError(
            "the numpy column backend is unavailable (numpy is not installed)")
    return _np


def as_numpy(column):
    """Zero-copy ``int64`` ndarray view of a buffer-backed column.

    The view aliases the column's memory (no element is boxed or copied);
    while it is alive the column cannot be resized -- kernels therefore keep
    their views function-local.  Only valid when the numpy backend resolved.
    """
    if _np is None:  # pragma: no cover - callers gate on resolve_column_backend
        raise RuntimeError("numpy is not available")
    if isinstance(column, ColumnView):
        return _np.frombuffer(column.raw, dtype=_np.int64)
    return _np.frombuffer(column, dtype=_np.int64)


def to_numpy(values):
    """An ``int64`` ndarray of any int sequence.

    Buffer-backed columns (:class:`IntColumn`, ``array('q')``) view
    zero-copy through the buffer protocol; plain lists/tuples copy.  The
    bulk kernels accept either so resident shard payloads and ad-hoc test
    columns fold through the same code.
    """
    if _np is None:  # pragma: no cover - callers gate on resolve_column_backend
        raise RuntimeError("numpy is not available")
    if isinstance(values, array):
        return _np.frombuffer(values, dtype=_np.int64)
    if isinstance(values, ColumnView):
        return _np.frombuffer(values.raw, dtype=_np.int64)
    return _np.asarray(values, dtype=_np.int64)
