"""Versioned on-disk snapshots: warm restarts and zero-copy shard loading.

The paper's deployment note (Section 6.5) observes that reusing an existing
seed scan cuts GPS runtime by 94% -- persistence, not the already-vectorized
kernels, dominates wall-clock once artifacts can be reused.  This module is
that persistence layer: every hot structure the engine builds -- the encoded
seed columns (:class:`~repro.scanner.records.ObservationBatch`,
:class:`~repro.core.features.HostFeatureColumns`) and the three Table 2
artifacts (the co-occurrence model's score tables, the priors plan, the
prediction index) -- serializes to a directory of **raw int64 column files**
plus one JSON manifest, and loads back either zero-copy (``mmap`` +
:class:`~repro.engine.columns.ColumnView`) or as materialized columns.

Format (version 1)::

    <dir>/MANIFEST.json            format version, per-section column tables
                                   (file, rows, dtype, crc32), encoder and
                                   interner tables, shard layout + placement
    <dir>/<section>.<column>.bin   one raw little-endian binary file per
                                   column buffer, written via ``tobytes()``

Because every column file *is* the column's memory, opening a snapshot is
O(map), not O(parse): a :class:`ColumnView` over the mapped file feeds the
stdlib kernels through ``tolist()`` hydration and the numpy kernels through
``np.frombuffer`` without decoding a single element.  Sharded host-group
sections additionally publish :class:`ShardFileRef` handles -- small
picklable descriptors a pool worker resolves by mapping its own files --
which is what makes shard (re)distribution zero-copy: loading, crash
recovery and pool resize move file handles, never pickled column bytes
(see :meth:`repro.engine.runtime.EngineRuntime.load_shards_from_snapshot`).

Failure handling is typed and loud: a truncated column file, a crc32
mismatch, or a manifest from a future format version raises
:class:`SnapshotError` (:class:`SnapshotIntegrityError` /
:class:`SnapshotVersionError`) -- a snapshot never partially loads.

Loaded artifacts are **bit-identical** to freshly built ones: encoders and
interners rebuild in exact table order, model/priors/index rows round-trip
in exact iteration order, so the equivalence-oracle discipline of the build
paths extends across a process restart.
"""

from __future__ import annotations

import json
import mmap
import os
import zlib
from array import array
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.columns import ColumnView, IntColumn
from repro.engine.encoding import DictionaryEncoder
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ColumnFile",
    "ShardFileRef",
    "Snapshot",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "SnapshotWriter",
    "open_snapshot",
    "save_snapshot",
]

#: Identifies a directory as one of our snapshots (manifest ``format`` field).
FORMAT_NAME = "gps-repro-snapshot"

#: Current on-disk format version.  Readers refuse *newer* versions with
#: :class:`SnapshotVersionError`; older versions load as long as the current
#: reader understands them (there is only version 1 so far).
FORMAT_VERSION = 1

#: The manifest file name inside a snapshot directory.
MANIFEST_NAME = "MANIFEST.json"

#: dtype name <-> array typecode for column files.  Everything the engine
#: folds over is int64 (the :class:`IntColumn` layout); float64 exists for
#: the prediction index's probability column.
_DTYPE_TO_TYPECODE = {"int64": "q", "float64": "d"}

#: Section names the high-level artifact accessors use.
_SEED_SECTION = "observations"
_FEATURES_SECTION = "host_features"
_MODEL_SECTION = "model"
_PRIORS_SECTION = "priors"
_INDEX_SECTION = "index"
_SHARD_SECTION_FMT = "shard-{idx:04d}"

#: The sharded host-group payload columns, in the order
#: :func:`repro.engine.shard.shard_group_columns` produces them.
_SHARD_COLUMNS = ("group_order", "group_keys", "member_starts", "labels",
                  "value_starts", "value_ids")


class SnapshotError(RuntimeError):
    """Base error for unreadable, corrupt or incompatible snapshots."""


class SnapshotIntegrityError(SnapshotError):
    """A column file is truncated or fails its manifest crc32 checksum."""


class SnapshotVersionError(SnapshotError):
    """The manifest declares a format version this reader does not know."""


@dataclass(frozen=True)
class ColumnFile:
    """One column's on-disk identity, exactly as recorded in the manifest."""

    name: str
    file: str
    rows: int
    dtype: str
    crc32: int

    @property
    def itemsize(self) -> int:
        return array(_DTYPE_TO_TYPECODE[self.dtype]).itemsize

    @property
    def nbytes(self) -> int:
        return self.rows * self.itemsize


@dataclass(frozen=True)
class ShardFileRef:
    """A picklable handle to one shard's column files.

    This is what ships over a pool worker's inbox instead of the shard's
    bytes: the coordinator keeps the ref as its resident record, the worker
    :meth:`open`\\ s it by mapping the files into its own address space, and
    crash recovery / pool resize re-ship the same few hundred bytes of
    descriptor while the kernel page cache keeps serving the data.
    """

    directory: str
    shard_idx: int
    columns: Tuple[ColumnFile, ...]

    @property
    def rows(self) -> int:
        """Total entries across the shard's columns (the placement weight)."""
        return sum(column.rows for column in self.columns)

    @property
    def nbytes(self) -> int:
        """Bytes the shard maps when opened (resident-gauge estimate)."""
        return sum(column.nbytes for column in self.columns)

    def open(self) -> Dict[str, ColumnView]:
        """Map every column file read-only and wrap it in a column view.

        Sizes are re-checked against the manifest rows (a file truncated
        after the snapshot was verified must not silently load short), but
        checksums are not re-walked here -- the coordinator verified them
        when it opened the snapshot, and O(map) loading is the point.
        """
        payload: Dict[str, ColumnView] = {}
        for column in self.columns:
            path = os.path.join(self.directory, column.file)
            payload[column.name] = ColumnView(
                _map_column(path, column),
                _DTYPE_TO_TYPECODE[column.dtype])
        return payload


def _map_column(path: str, column: ColumnFile):
    """mmap one column file read-only, enforcing the manifest's size."""
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise SnapshotError(f"snapshot column file missing: {path}") from exc
    if size != column.nbytes:
        raise SnapshotIntegrityError(
            f"snapshot column file {path} is truncated or padded: "
            f"{size} bytes on disk, manifest says {column.rows} rows "
            f"of {column.dtype} ({column.nbytes} bytes)")
    if size == 0:
        return b""
    with open(path, "rb") as handle:
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)


def _column_bytes(values: Any, typecode: str) -> bytes:
    """A column's raw buffer, via ``tobytes()`` when it is already native."""
    if isinstance(values, array):
        if values.typecode != typecode:
            raise ValueError(
                f"column typecode mismatch: have {values.typecode!r}, "
                f"writing {typecode!r}")
        return values.tobytes()
    if isinstance(values, ColumnView):
        if values.typecode != typecode:
            raise ValueError(
                f"column typecode mismatch: have {values.typecode!r}, "
                f"writing {typecode!r}")
        return bytes(values.raw)
    return array(typecode, values).tobytes()


class SnapshotWriter:
    """Streams named column sections into a snapshot directory.

    ``add_section`` writes each column's raw buffer immediately (one
    ``tobytes()`` + one ``write`` per column) and records its manifest row;
    ``finish`` writes the manifest last, so a crashed save can never look
    like a complete snapshot -- the manifest is the commit record.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._sections: Dict[str, Dict[str, Any]] = {}
        self.bytes_written = 0

    def add_section(self, name: str, columns: Mapping[str, Any],
                    meta: Optional[dict] = None,
                    dtypes: Optional[Mapping[str, str]] = None) -> None:
        """Write one section's columns and record them for the manifest.

        Args:
            name: section name, unique within the snapshot.
            columns: column name -> int sequence (or a float sequence for
                columns named in ``dtypes``); native buffers
                (:class:`IntColumn`, ``array``) write via ``tobytes()``.
            meta: JSON-serializable side tables (encoder/interner contents).
            dtypes: per-column dtype overrides (default ``"int64"``).
        """
        if name in self._sections:
            raise ValueError(f"duplicate snapshot section: {name!r}")
        recorded: Dict[str, Any] = {}
        for column_name, values in columns.items():
            dtype = (dtypes or {}).get(column_name, "int64")
            typecode = _DTYPE_TO_TYPECODE[dtype]
            payload = _column_bytes(values, typecode)
            filename = f"{name}.{column_name}.bin"
            with open(os.path.join(self.directory, filename), "wb") as handle:
                handle.write(payload)
            self.bytes_written += len(payload)
            recorded[column_name] = {
                "file": filename,
                "rows": len(payload) // array(typecode).itemsize,
                "dtype": dtype,
                "crc32": zlib.crc32(payload),
            }
        # Side tables ship inside the manifest but as one embedded JSON
        # string per section: the outer parse scans a single string token
        # instead of materializing every encoder/interner row, keeping
        # ``open_snapshot`` O(map) -- readers that never touch a section's
        # meta (the warm-restart path skips the host-features encoder and
        # the banner interner entirely) never pay for decoding it.
        self._sections[name] = {
            "columns": recorded,
            "meta_json": json.dumps(meta or {}, sort_keys=True),
        }

    def finish(self, meta: Optional[dict] = None) -> dict:
        """Write the manifest (the commit point) and return it."""
        manifest = {
            "format": FORMAT_NAME,
            "format_version": FORMAT_VERSION,
            "sections": self._sections,
            "meta": meta or {},
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
        return manifest


class Snapshot:
    """An opened, structurally verified snapshot directory.

    Column access is zero-copy by default (``mmap`` +
    :class:`ColumnView`); artifact accessors rebuild the exact objects the
    build paths produce.  Use :func:`open_snapshot` to construct.
    """

    def __init__(self, directory: str, manifest: dict) -> None:
        self.directory = directory
        self.manifest = manifest
        self._meta_cache: Dict[str, dict] = {}

    # -- raw access ----------------------------------------------------------------

    @property
    def version(self) -> int:
        return self.manifest["format_version"]

    @property
    def meta(self) -> dict:
        return self.manifest.get("meta", {})

    def sections(self) -> List[str]:
        return list(self.manifest["sections"])

    def has_section(self, name: str) -> bool:
        return name in self.manifest["sections"]

    def section_meta(self, name: str) -> dict:
        """A section's side tables, decoded lazily on first access.

        Metas are embedded in the manifest as one JSON string per section
        (see :meth:`SnapshotWriter.add_section`); decoding happens here,
        once, only for sections a reader actually materializes.  A plain
        ``"meta"`` dict (hand-written manifests) is honoured as-is.
        """
        if name in self._meta_cache:
            return self._meta_cache[name]
        section = self._section(name)
        if "meta" in section:
            meta = section["meta"]
        else:
            try:
                meta = json.loads(section.get("meta_json", "{}"))
            except ValueError as exc:
                raise SnapshotError(
                    f"snapshot section {name!r} at {self.directory} has "
                    f"an unparseable embedded meta: {exc}") from exc
        if not isinstance(meta, dict):
            raise SnapshotError(
                f"snapshot section {name!r} at {self.directory} declares "
                f"a non-object meta ({type(meta).__name__})")
        self._meta_cache[name] = meta
        return meta

    def _section(self, name: str) -> dict:
        try:
            return self.manifest["sections"][name]
        except KeyError:
            raise SnapshotError(
                f"snapshot at {self.directory} has no {name!r} section "
                f"(sections: {sorted(self.manifest['sections'])})") from None

    def column_files(self, name: str) -> List[ColumnFile]:
        return [
            ColumnFile(name=column_name, file=entry["file"],
                       rows=entry["rows"], dtype=entry["dtype"],
                       crc32=entry["crc32"])
            for column_name, entry in self._section(name)["columns"].items()
        ]

    def columns(self, name: str, materialize: bool = False) -> Dict[str, Any]:
        """A section's columns, mmap-backed (default) or copied out.

        ``materialize=True`` returns appendable :class:`IntColumn` buffers
        (``array('d')`` for float columns) instead of read-only views.
        """
        out: Dict[str, Any] = {}
        for column in self.column_files(name):
            path = os.path.join(self.directory, column.file)
            typecode = _DTYPE_TO_TYPECODE[column.dtype]
            buffer = _map_column(path, column)
            if not materialize:
                out[column.name] = ColumnView(buffer, typecode)
            else:
                copy = IntColumn() if typecode == "q" else array("d")
                copy.frombytes(buffer)
                out[column.name] = copy
        return out

    # -- sharded host groups -------------------------------------------------------

    def shard_layout(self) -> Optional[dict]:
        """The manifest's shard layout (count, step size, placement hint)."""
        return self.meta.get("shards")

    def shard_refs(self) -> List[ShardFileRef]:
        """One :class:`ShardFileRef` per saved shard, in shard order."""
        layout = self.shard_layout()
        if layout is None:
            raise SnapshotError(
                f"snapshot at {self.directory} was saved without sharded "
                "host groups (save with shard_count/step_size)")
        return [
            ShardFileRef(
                directory=self.directory, shard_idx=idx,
                columns=tuple(self.column_files(
                    _SHARD_SECTION_FMT.format(idx=idx))))
            for idx in range(layout["shard_count"])
        ]

    # -- artifact accessors --------------------------------------------------------

    def observation_batch(self):
        """Rebuild the encoded seed columns as an ``ObservationBatch``.

        The status encoder, the banner interner and the batch-local banner
        table rebuild from the manifest's tables in exact id order, so every
        column id resolves to byte-identical content.  Columns are
        materialized (the batch API allows appends); the underlying reads
        are still single-buffer ``frombytes`` passes.
        """
        from repro.internet.banners import BannerInterner
        from repro.scanner.records import ObservationBatch

        meta = self.section_meta(_SEED_SECTION)
        columns = self.columns(_SEED_SECTION, materialize=True)
        banners = BannerInterner()
        for features in meta["banners"]:
            banners.intern_value(features)
        statuses = DictionaryEncoder()
        for status in meta["statuses"]:
            statuses.encode(status)
        batch = ObservationBatch(
            banners=banners, statuses=statuses,
            ips=columns["ips"], ports=columns["ports"],
            status=columns["status"], banner_ids=columns["banner_ids"],
            ttls=columns["ttls"],
            local_banners=[dict(b) for b in meta["local_banners"]])
        return batch

    def host_feature_columns(self):
        """Rebuild the encoded host/service/predictor relation."""
        from repro.core.features import HostFeatureColumns

        meta = self.section_meta(_FEATURES_SECTION)
        columns = self.columns(_FEATURES_SECTION, materialize=True)
        encoder = DictionaryEncoder()
        for predictor in meta["encoder"]:
            encoder.encode(_predictor_from_json(predictor))
        return HostFeatureColumns(
            ips=columns["ips"], member_starts=columns["member_starts"],
            ports=columns["ports"], value_starts=columns["value_starts"],
            value_ids=columns["value_ids"], encoder=encoder)

    def model(self):
        """Rebuild the co-occurrence model, bit-identical to the built one.

        Rows were saved in the model dicts' iteration order, so the rebuilt
        dicts match the originals in content *and* insertion order --
        downstream consumers that iterate (priors, index) see exactly what
        they would have seen pre-restart.
        """
        from repro.core.model import CooccurrenceModel

        meta = self.section_meta(_MODEL_SECTION)
        predictors = list(map(tuple, meta["predictors"]))
        columns = self.columns(_MODEL_SECTION)
        cooccurrence: Dict[Any, Dict[int, int]] = {}
        # ``tolist()`` unboxes each mapped column in one C pass (element-wise
        # iteration over a memoryview is ~5x slower), and pairs were saved
        # grouped by predictor, so one dict lookup per run -- not per pair --
        # suffices to rebuild the nested dicts in original insertion order.
        last_pid = -1
        targets: Dict[int, int] = {}
        for pid, port, count in zip(columns["pair_pids"].tolist(),
                                    columns["pair_ports"].tolist(),
                                    columns["pair_counts"].tolist()):
            if pid != last_pid:
                targets = cooccurrence.setdefault(predictors[pid], {})
                last_pid = pid
            targets[port] = count
        denominators = {
            predictors[pid]: count
            for pid, count in zip(columns["denominator_pids"].tolist(),
                                  columns["denominator_counts"].tolist())
        }
        return CooccurrenceModel(cooccurrence=cooccurrence,
                                 denominators=denominators)

    def priors_plan(self):
        """Rebuild the ordered priors scan list."""
        from repro.core.priors import PriorsEntry

        columns = self.columns(_PRIORS_SECTION)
        return [
            PriorsEntry(port=port, subnet=subnet, coverage=coverage)
            for port, subnet, coverage in zip(
                columns["ports"].tolist(), columns["subnets"].tolist(),
                columns["coverage"].tolist())
        ]

    def prediction_index(self):
        """Rebuild the most-predictive-feature-values index."""
        from repro.core.predictions import (
            PredictiveFeature,
            PredictiveFeatureIndex,
        )

        meta = self.section_meta(_INDEX_SECTION)
        predictors = list(map(tuple, meta["predictors"]))
        columns = self.columns(_INDEX_SECTION)
        return PredictiveFeatureIndex(
            PredictiveFeature(predictor=predictors[pid], target_port=port,
                              probability=probability)
            for pid, port, probability in zip(
                columns["pids"].tolist(), columns["ports"].tolist(),
                columns["probabilities"].tolist())
        )


def _predictor_to_json(predictor: Any) -> list:
    """Predictor tuples (flat str/int tuples) as JSON arrays."""
    return list(predictor)


def _predictor_from_json(row: Sequence[Any]) -> tuple:
    return tuple(row)


def _verify_checksums(directory: str, manifest: dict) -> None:
    """Walk every column file's crc32 against the manifest."""
    for name, section in manifest["sections"].items():
        for column_name, entry in section["columns"].items():
            column = ColumnFile(name=column_name, file=entry["file"],
                                rows=entry["rows"], dtype=entry["dtype"],
                                crc32=entry["crc32"])
            path = os.path.join(directory, column.file)
            buffer = _map_column(path, column)
            actual = zlib.crc32(memoryview(buffer))
            if actual != column.crc32:
                raise SnapshotIntegrityError(
                    f"snapshot column {name}.{column_name} ({path}) fails "
                    f"its checksum: crc32 {actual:#010x}, manifest says "
                    f"{column.crc32:#010x}")


def open_snapshot(directory: str, verify: bool = True,
                  telemetry: Optional[Telemetry] = None) -> Snapshot:
    """Open and validate a snapshot directory.

    Structural validation always runs: the manifest must parse, declare our
    format at a version this reader knows, and every column file must exist
    at exactly its manifest size (truncation is never silent).  With
    ``verify=True`` (the default) every file's crc32 is also checked -- one
    sequential pass over mapped memory; pass ``verify=False`` only when the
    caller just verified the same directory.

    Raises:
        SnapshotError: missing/unparseable manifest or missing files.
        SnapshotVersionError: manifest from a future format version.
        SnapshotIntegrityError: truncated file or checksum mismatch.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    with tel.span("snapshot.open") as span:
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise SnapshotError(
                f"no snapshot manifest at {manifest_path}") from exc
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"snapshot manifest at {manifest_path} is not valid JSON: "
                f"{exc}") from exc
        if manifest.get("format") != FORMAT_NAME:
            raise SnapshotError(
                f"{manifest_path} is not a {FORMAT_NAME} manifest "
                f"(format={manifest.get('format')!r})")
        version = manifest.get("format_version")
        if not isinstance(version, int) or version < 1:
            raise SnapshotError(
                f"snapshot manifest declares invalid format_version "
                f"{version!r}")
        if version > FORMAT_VERSION:
            raise SnapshotVersionError(
                f"snapshot at {directory} is format version {version}; "
                f"this reader understands up to {FORMAT_VERSION} -- "
                "upgrade before loading it")
        snapshot = Snapshot(directory, manifest)
        total_bytes = 0
        for name in snapshot.sections():
            for column in snapshot.column_files(name):
                # Size check (cheap, catches truncation) runs even without
                # checksum verification.
                _map_column(os.path.join(directory, column.file), column)
                total_bytes += column.nbytes
        if verify:
            _verify_checksums(directory, manifest)
        span.set("sections", len(snapshot.sections()))
        span.set("bytes", total_bytes)
        span.set("verified", verify)
        if tel.enabled:
            tel.gauge("snapshot_bytes_read",
                      "Bytes of column files in the last opened snapshot"
                      ).set(total_bytes)
    return snapshot


# -- high-level save ---------------------------------------------------------------------


def _add_observations(writer: SnapshotWriter, batch: Any) -> None:
    writer.add_section(
        _SEED_SECTION,
        {"ips": batch.ips, "ports": batch.ports, "status": batch.status,
         "banner_ids": batch.banner_ids, "ttls": batch.ttls},
        meta={
            "statuses": list(batch.statuses.values()),
            "banners": [dict(batch.banners.features(i))
                        for i in range(len(batch.banners))],
            "local_banners": [dict(banner) for banner in batch.local_banners],
        })


def _add_host_features(writer: SnapshotWriter, host_features: Any) -> None:
    writer.add_section(
        _FEATURES_SECTION,
        {"ips": host_features.ips,
         "member_starts": host_features.member_starts,
         "ports": host_features.ports,
         "value_starts": host_features.value_starts,
         "value_ids": host_features.value_ids},
        meta={"encoder": [_predictor_to_json(p)
                          for p in host_features.encoder.values()]})


def _add_model(writer: SnapshotWriter, model: Any) -> None:
    encoder = DictionaryEncoder()
    pair_pids, pair_ports, pair_counts = IntColumn(), IntColumn(), IntColumn()
    for predictor, targets in model.cooccurrence.items():
        pid = encoder.encode(predictor)
        for port, count in targets.items():
            pair_pids.append(pid)
            pair_ports.append(port)
            pair_counts.append(count)
    denominator_pids, denominator_counts = IntColumn(), IntColumn()
    for predictor, count in model.denominators.items():
        denominator_pids.append(encoder.encode(predictor))
        denominator_counts.append(count)
    writer.add_section(
        _MODEL_SECTION,
        {"pair_pids": pair_pids, "pair_ports": pair_ports,
         "pair_counts": pair_counts, "denominator_pids": denominator_pids,
         "denominator_counts": denominator_counts},
        meta={"predictors": [_predictor_to_json(p)
                             for p in encoder.values()]})


def _add_priors(writer: SnapshotWriter, priors_plan: Sequence[Any]) -> None:
    writer.add_section(
        _PRIORS_SECTION,
        {"ports": IntColumn(entry.port for entry in priors_plan),
         "subnets": IntColumn(entry.subnet for entry in priors_plan),
         "coverage": IntColumn(entry.coverage for entry in priors_plan)})


def _add_index(writer: SnapshotWriter, index: Any) -> None:
    encoder = DictionaryEncoder()
    pids, ports = IntColumn(), IntColumn()
    probabilities = array("d")
    # Save in the index's own iteration order (not the sorted entries()
    # view) so the rebuilt _by_predictor matches insertion order exactly.
    for predictor, targets in index._by_predictor.items():
        pid = encoder.encode(predictor)
        for port, probability in targets.items():
            pids.append(pid)
            ports.append(port)
            probabilities.append(probability)
    writer.add_section(
        _INDEX_SECTION,
        {"pids": pids, "ports": ports, "probabilities": probabilities},
        meta={"predictors": [_predictor_to_json(p)
                             for p in encoder.values()]},
        dtypes={"probabilities": "float64"})


def _add_shards(writer: SnapshotWriter, host_features: Any, shard_count: int,
                step_size: int, placement_workers: int) -> dict:
    """Shard the host groups exactly like the resident loader and save them.

    Uses the same flatten/shard pipeline as
    :class:`repro.core.runtime_plans.ResidentHostGroups` (subnet group keys
    at ``step_size``, stable-hash assignment over ``shard_count``), so a
    runtime loading these files holds byte-identical shards to one that
    shipped them through queues.
    """
    from repro.engine.runtime import lpt_placement
    from repro.engine.shard import shard_group_columns
    from repro.net.ipv4 import subnet_key

    assign_keys = host_features.ips
    group_keys = [subnet_key(ip, step_size) for ip in assign_keys]
    sharded = shard_group_columns(
        assign_keys, group_keys, host_features.member_starts,
        host_features.ports, host_features.value_starts,
        host_features.value_ids, shard_count)
    rows_per_shard = []
    for shard_idx, payload in enumerate(sharded.shards):
        writer.add_section(
            _SHARD_SECTION_FMT.format(idx=shard_idx),
            {name: payload[name] for name in _SHARD_COLUMNS})
        rows_per_shard.append(sum(len(payload[name])
                                  for name in _SHARD_COLUMNS))
    return {
        "shard_count": shard_count,
        "step_size": step_size,
        "group_count": len(group_keys),
        "rows_per_shard": rows_per_shard,
        "placement": {
            "workers": placement_workers,
            "shard_to_worker": lpt_placement(rows_per_shard,
                                             placement_workers),
        },
    }


def save_snapshot(directory: str, *, observations: Any = None,
                  host_features: Any = None, model: Any = None,
                  priors_plan: Optional[Sequence[Any]] = None,
                  index: Any = None, shard_count: Optional[int] = None,
                  step_size: Optional[int] = None,
                  placement_workers: Optional[int] = None,
                  meta: Optional[dict] = None,
                  telemetry: Optional[Telemetry] = None) -> dict:
    """Save any subset of the engine's artifacts as one snapshot directory.

    Args:
        directory: target directory (created if missing; existing column
            files for the same sections are overwritten).
        observations: an :class:`~repro.scanner.records.ObservationBatch`
            (the encoded seed columns).
        host_features: a :class:`~repro.core.features.HostFeatureColumns`.
        model: a :class:`~repro.core.model.CooccurrenceModel`.
        priors_plan: the ordered :class:`~repro.core.priors.PriorsEntry`
            list.
        index: a :class:`~repro.core.predictions.PredictiveFeatureIndex`.
        shard_count: additionally save ``host_features`` pre-sharded into
            this many mmap-loadable shard sections (requires ``step_size``).
        step_size: the priors subnet prefix length the shard group keys use
            -- must match the ``GPSConfig.step_size`` the runtime will use.
        placement_workers: worker count the manifest's placement hint is
            computed for (defaults to ``shard_count``); runtimes with a
            different pool size recompute their own placement.
        meta: extra JSON-serializable manifest metadata.
        telemetry: optional instrumentation (``snapshot.save`` span + byte
            gauge).

    Returns:
        The manifest dict, as written.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    with tel.span("snapshot.save") as span:
        writer = SnapshotWriter(directory)
        top_meta = dict(meta or {})
        if observations is not None:
            _add_observations(writer, observations)
        if host_features is not None:
            _add_host_features(writer, host_features)
            if shard_count is not None:
                if step_size is None:
                    raise ValueError(
                        "saving sharded host groups requires step_size")
                if shard_count < 1:
                    raise ValueError("shard_count must be >= 1")
                top_meta["shards"] = _add_shards(
                    writer, host_features, shard_count, step_size,
                    placement_workers or shard_count)
        elif shard_count is not None:
            raise ValueError("shard_count requires host_features")
        if model is not None:
            _add_model(writer, model)
        if priors_plan is not None:
            _add_priors(writer, priors_plan)
        if index is not None:
            _add_index(writer, index)
        manifest = writer.finish(top_meta)
        span.set("sections", len(manifest["sections"]))
        span.set("bytes", writer.bytes_written)
        if tel.enabled:
            tel.gauge("snapshot_bytes_written",
                      "Bytes of column files written by the last snapshot "
                      "save").set(writer.bytes_written)
    return manifest
