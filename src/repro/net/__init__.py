"""Networking primitives used throughout the GPS reproduction.

This package contains the low-level building blocks that both the synthetic
Internet substrate (:mod:`repro.internet`) and the GPS system itself
(:mod:`repro.core`) rely on:

* :mod:`repro.net.ipv4` -- integer-based IPv4 address and prefix arithmetic.
  GPS manipulates hundreds of thousands of addresses; representing them as
  plain ``int`` values keeps everything hashable, vectorizable and cheap.
* :mod:`repro.net.ports` -- the port registry: IANA-style assignments for the
  well-known ports the paper discusses, popularity ranks, and helpers for the
  "top-N ports" orderings used by the optimal port-order baseline.
* :mod:`repro.net.asn` -- a miniature ASN database mapping prefixes to
  autonomous systems, mirroring the "join on an ASN database" feature
  extraction step of the paper (Section 5.5).
"""

from repro.net.ipv4 import (
    IPv4Error,
    format_ip,
    ip_in_prefix,
    iter_prefix,
    parse_ip,
    prefix_mask,
    prefix_of,
    prefix_size,
    random_ips,
    subnet_key,
)
from repro.net.ports import (
    MAX_PORT,
    PORT_SERVICE_NAMES,
    PortRegistry,
    WELL_KNOWN_PORTS,
    is_valid_port,
)
from repro.net.asn import AsnDatabase, AsnRecord

__all__ = [
    "IPv4Error",
    "parse_ip",
    "format_ip",
    "prefix_of",
    "prefix_mask",
    "prefix_size",
    "subnet_key",
    "ip_in_prefix",
    "iter_prefix",
    "random_ips",
    "MAX_PORT",
    "WELL_KNOWN_PORTS",
    "PORT_SERVICE_NAMES",
    "PortRegistry",
    "is_valid_port",
    "AsnDatabase",
    "AsnRecord",
]
