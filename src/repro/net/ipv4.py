"""Integer-based IPv4 address and prefix arithmetic.

Every address in this reproduction is an ``int`` in ``[0, 2**32)``.  The GPS
pipeline touches millions of (address, port) pairs, so the representation must
be hashable, compact and friendly to numpy vectorization.  The helpers in this
module are deliberately tiny and allocation-free; they are the innermost loop
of the scanner simulation and of GPS feature extraction.

Terminology follows the paper:

* a *prefix* (or *subnetwork*) of length ``L`` is written ``a.b.c.d/L``;
* the *scanning step size* is a prefix length (e.g. ``/16``) used when GPS
  exhaustively scans the neighbourhood of a seed service (Section 5.3);
* ``subnet_key(ip, L)`` is the canonical integer identifying the ``/L``
  subnetwork an address belongs to.  GPS uses it as its network-layer feature
  value (Table 1 uses the /16 subnetwork and the ASN).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Sequence

MAX_IPV4 = 2**32 - 1


class IPv4Error(ValueError):
    """Raised when an address or prefix is malformed."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad notation into an integer address.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise IPv4Error(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise IPv4Error(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise IPv4Error(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(ip: int) -> str:
    """Format an integer address as dotted-quad notation.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= ip <= MAX_IPV4:
        raise IPv4Error(f"address out of range: {ip}")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_mask(prefix_len: int) -> int:
    """Return the netmask (as an int) for a prefix length.

    >>> hex(prefix_mask(16))
    '0xffff0000'
    """
    if not 0 <= prefix_len <= 32:
        raise IPv4Error(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (MAX_IPV4 << (32 - prefix_len)) & MAX_IPV4


def prefix_of(ip: int, prefix_len: int) -> int:
    """Return the base address of the ``/prefix_len`` prefix containing ``ip``."""
    return ip & prefix_mask(prefix_len)


def subnet_key(ip: int, prefix_len: int) -> int:
    """Return a canonical integer key identifying the subnet of ``ip``.

    The key encodes both the prefix base address and the prefix length so that
    keys from different step sizes never collide:
    ``key = (base << 6) | prefix_len``.
    """
    return (prefix_of(ip, prefix_len) << 6) | prefix_len


def subnet_key_parts(key: int) -> tuple[int, int]:
    """Invert :func:`subnet_key`, returning ``(base_address, prefix_len)``."""
    return key >> 6, key & 0x3F


def format_subnet(key: int) -> str:
    """Render a subnet key in CIDR notation (e.g. ``"10.1.0.0/16"``)."""
    base, length = subnet_key_parts(key)
    return f"{format_ip(base)}/{length}"


def prefix_size(prefix_len: int) -> int:
    """Number of addresses contained in a prefix of the given length."""
    if not 0 <= prefix_len <= 32:
        raise IPv4Error(f"prefix length out of range: {prefix_len}")
    return 1 << (32 - prefix_len)


def ip_in_prefix(ip: int, base: int, prefix_len: int) -> bool:
    """Return whether ``ip`` falls inside ``base/prefix_len``."""
    return prefix_of(ip, prefix_len) == prefix_of(base, prefix_len)


def iter_prefix(base: int, prefix_len: int) -> Iterator[int]:
    """Iterate every address of ``base/prefix_len`` in ascending order.

    Useful for exhaustive scans of small prefixes in tests; production code
    paths intersect prefixes with known-host indices instead of enumerating.
    """
    start = prefix_of(base, prefix_len)
    return iter(range(start, start + prefix_size(prefix_len)))


def random_ips(count: int, rng: random.Random, universe: Sequence[int] | None = None) -> List[int]:
    """Draw ``count`` distinct random addresses.

    When ``universe`` is given the sample is drawn from it (the synthetic
    Internet's address pool); otherwise addresses are drawn uniformly from the
    full 32-bit space, mirroring ZMap's address-space randomization.
    """
    if count < 0:
        raise IPv4Error(f"negative sample size: {count}")
    if universe is not None:
        if count > len(universe):
            raise IPv4Error(
                f"cannot sample {count} addresses from a universe of {len(universe)}"
            )
        return rng.sample(list(universe), count)
    seen: set[int] = set()
    while len(seen) < count:
        seen.add(rng.randrange(0, MAX_IPV4 + 1))
    return list(seen)


def summarize_prefixes(ips: Iterable[int], prefix_len: int) -> dict[int, int]:
    """Group addresses by their ``/prefix_len`` prefix.

    Returns a mapping of subnet key -> number of addresses observed in that
    subnet.  GPS's priors-scan planner uses this to count how many seed
    services each (port, subnetwork) tuple can cover.
    """
    counts: dict[int, int] = {}
    for ip in ips:
        key = subnet_key(ip, prefix_len)
        counts[key] = counts.get(key, 0) + 1
    return counts
