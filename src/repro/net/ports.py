"""Port registry: well-known assignments, popularity ranks, and port orderings.

The paper repeatedly refers to three port groupings:

* the 19 popular TCP ports evaluated against the XGBoost scanner (Figure 4);
* the "top 2K most popular ports" that the Censys Universal dataset covers;
* the full 65,535-port space that GPS targets.

This module provides a :class:`PortRegistry` that captures IANA-style protocol
assignments for the ports that matter to the reproduction, plus helpers for
building popularity-ordered port lists (the "optimal port-order probing"
baseline exhaustively scans ports in descending order of service count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

MAX_PORT = 65535

#: Protocol names for the well-known / frequently-discussed ports in the paper.
#: Covers the 19 ports of the Sarabi et al. comparison (Figure 4), the standard
#: service ports mentioned in Sections 1-6, and common alternate ports.
PORT_SERVICE_NAMES: Dict[int, str] = {
    21: "ftp",
    22: "ssh",
    23: "telnet",
    25: "smtp",
    53: "dns",
    80: "http",
    110: "pop3",
    119: "nntp",
    123: "ntp",
    143: "imap",
    161: "snmp",
    179: "bgp",
    443: "https",
    445: "smb",
    465: "smtps",
    514: "syslog",
    554: "rtsp",
    587: "submission",
    631: "ipp",
    873: "rsync",
    993: "imaps",
    995: "pop3s",
    1080: "socks",
    1433: "mssql",
    1521: "oracle",
    1723: "pptp",
    1883: "mqtt",
    2000: "cisco-sccp",
    2222: "ssh-alt",
    2323: "telnet-alt",
    3128: "http-proxy",
    3306: "mysql",
    3389: "rdp",
    5060: "sip",
    5222: "xmpp",
    5432: "postgres",
    5900: "vnc",
    5901: "vnc-alt",
    6379: "redis",
    7547: "cwmp",
    8000: "http-alt",
    8080: "http-alt",
    8082: "http-alt",
    8443: "https-alt",
    8888: "http-alt",
    9000: "http-alt",
    9090: "http-alt",
    9200: "elasticsearch",
    11211: "memcached",
    27017: "mongodb",
}

#: The 19 TCP ports (and their assigned protocols) used in the paper's
#: comparison against the XGBoost scanner of Sarabi et al. (Section 6.4).
XGBOOST_COMPARISON_PORTS: List[int] = [
    21, 22, 23, 25, 80, 110, 119, 143, 443, 445,
    465, 587, 993, 995, 2323, 3306, 5432, 7547, 8080, 8888,
]
# The paper says 19 ports; it lists 20 distinct numbers across Figure 4's axis,
# of which port 110 does not appear -- keep the canonical 19 in a second list.
XGBOOST_FIGURE4_PORTS: List[int] = [
    2323, 5432, 465, 995, 143, 7547, 110, 587, 993, 445,
    3306, 8888, 25, 23, 8080, 21, 22, 80, 443,
]

WELL_KNOWN_PORTS: List[int] = sorted(PORT_SERVICE_NAMES)


def is_valid_port(port: int) -> bool:
    """Return whether ``port`` is a valid TCP port (1-65535)."""
    return 1 <= port <= MAX_PORT


def assigned_protocol(port: int) -> str:
    """Return the IANA-style protocol name assigned to a port.

    Unassigned (or unlisted) ports return ``"unknown"``: GPS treats the
    protocol actually spoken on a port (identified by LZR fingerprinting) as a
    feature, not the assignment, precisely because the majority of services run
    on unexpected ports.
    """
    if not is_valid_port(port):
        raise ValueError(f"invalid port: {port}")
    return PORT_SERVICE_NAMES.get(port, "unknown")


@dataclass
class PortRegistry:
    """Tracks per-port service counts and exposes popularity orderings.

    The registry is the reproduction's stand-in for "Censys tells us which
    ports are most populated".  It is built from a ground-truth
    :class:`~repro.internet.universe.Universe` (or any iterable of ports) and
    then queried by the baselines and analysis code.
    """

    counts: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_ports(cls, ports: Iterable[int]) -> "PortRegistry":
        """Build a registry by counting occurrences of each port."""
        counts: Dict[int, int] = {}
        for port in ports:
            if not is_valid_port(port):
                raise ValueError(f"invalid port: {port}")
            counts[port] = counts.get(port, 0) + 1
        return cls(counts=counts)

    @classmethod
    def from_counts(cls, counts: Mapping[int, int]) -> "PortRegistry":
        """Build a registry from a precomputed ``port -> count`` mapping."""
        for port, count in counts.items():
            if not is_valid_port(port):
                raise ValueError(f"invalid port: {port}")
            if count < 0:
                raise ValueError(f"negative count for port {port}")
        return cls(counts=dict(counts))

    def count(self, port: int) -> int:
        """Number of services observed on ``port``."""
        return self.counts.get(port, 0)

    def total_services(self) -> int:
        """Total number of services across all ports."""
        return sum(self.counts.values())

    def ports_by_popularity(self) -> List[int]:
        """All observed ports in descending order of service count.

        Ties are broken by ascending port number so the ordering is
        deterministic across runs.
        """
        return sorted(self.counts, key=lambda p: (-self.counts[p], p))

    def top_ports(self, n: int) -> List[int]:
        """The ``n`` most populated ports (the "top-N ports" of the paper)."""
        if n < 0:
            raise ValueError(f"negative n: {n}")
        return self.ports_by_popularity()[:n]

    def ports_with_min_hosts(self, minimum: int) -> List[int]:
        """Ports with at least ``minimum`` responsive hosts.

        The paper filters its LZR evaluation to ports with more than two
        responsive IP addresses (Section 6.1); this helper implements that
        filter for arbitrary thresholds.
        """
        return sorted(p for p, c in self.counts.items() if c >= minimum)

    def cumulative_coverage(self, ordered_ports: Sequence[int] | None = None) -> List[tuple[int, float]]:
        """Cumulative fraction of all services covered by a port ordering.

        Returns ``[(port, cumulative_fraction), ...]``.  With the default
        popularity ordering this is exactly the "exhaustive, optimal order"
        reference curve of Figure 2: scanning ports in descending popularity
        and asking what fraction of services the first k ports contain.
        """
        if ordered_ports is None:
            ordered_ports = self.ports_by_popularity()
        total = self.total_services()
        if total == 0:
            return [(port, 0.0) for port in ordered_ports]
        running = 0
        curve: List[tuple[int, float]] = []
        for port in ordered_ports:
            running += self.counts.get(port, 0)
            curve.append((port, running / total))
        return curve
