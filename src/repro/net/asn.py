"""A miniature autonomous-system (ASN) database.

GPS extracts an IP address's ASN as a network-layer feature by "joining on a
database that provides the feature" (paper Section 5.5).  The reproduction's
synthetic Internet allocates prefixes to autonomous systems when the universe
is generated; this module stores that allocation and answers longest-prefix
match lookups, exactly like a routing-table-derived IP-to-ASN dataset would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.net.ipv4 import IPv4Error, format_ip, prefix_of


@dataclass(frozen=True)
class AsnRecord:
    """One announced prefix.

    Attributes:
        base: integer base address of the announced prefix.
        prefix_len: prefix length of the announcement.
        asn: autonomous system number originating the prefix.
        name: organisation name (e.g. ``"Distributel Network"``); the paper's
            Section 6.6 examples talk about feature values like
            ``(ASN 1181, telnet banner)``.
    """

    base: int
    prefix_len: int
    asn: int
    name: str = ""

    def contains(self, ip: int) -> bool:
        """Return whether ``ip`` falls inside this announcement."""
        return prefix_of(ip, self.prefix_len) == prefix_of(self.base, self.prefix_len)

    def cidr(self) -> str:
        """Render the announcement in CIDR notation."""
        return f"{format_ip(self.base)}/{self.prefix_len}"


class AsnDatabase:
    """Longest-prefix-match IP-to-ASN lookups.

    Announcements are indexed by prefix length so a lookup walks from the most
    specific (/32) to the least specific (/0) length present, returning the
    first match -- the standard longest-prefix-match semantics of BGP routing
    tables.
    """

    def __init__(self, records: Iterable[AsnRecord] = ()) -> None:
        self._by_len: Dict[int, Dict[int, AsnRecord]] = {}
        self._names: Dict[int, str] = {}
        for record in records:
            self.add(record)

    def add(self, record: AsnRecord) -> None:
        """Register an announcement.

        Duplicate announcements of the same prefix are rejected: the synthetic
        topology generator never produces overlapping same-length allocations,
        so a collision indicates a bug upstream.
        """
        if not 0 <= record.prefix_len <= 32:
            raise IPv4Error(f"prefix length out of range: {record.prefix_len}")
        bucket = self._by_len.setdefault(record.prefix_len, {})
        key = prefix_of(record.base, record.prefix_len)
        if key in bucket:
            raise ValueError(f"duplicate announcement for {record.cidr()}")
        bucket[key] = record
        if record.name:
            self._names.setdefault(record.asn, record.name)

    def lookup(self, ip: int) -> Optional[AsnRecord]:
        """Return the most specific announcement containing ``ip``, if any."""
        for prefix_len in sorted(self._by_len, reverse=True):
            key = prefix_of(ip, prefix_len)
            record = self._by_len[prefix_len].get(key)
            if record is not None:
                return record
        return None

    def asn_of(self, ip: int, default: int = 0) -> int:
        """Return the ASN originating ``ip`` or ``default`` when unannounced.

        GPS uses ``0`` as the "unknown ASN" sentinel; services in unannounced
        space still participate in the model through their subnet feature.
        """
        record = self.lookup(ip)
        return record.asn if record is not None else default

    def name_of(self, asn: int) -> str:
        """Return the organisation name registered for an ASN (or ``""``)."""
        return self._names.get(asn, "")

    def records(self) -> List[AsnRecord]:
        """All announcements, most specific first (for inspection/tests)."""
        out: List[AsnRecord] = []
        for prefix_len in sorted(self._by_len, reverse=True):
            out.extend(self._by_len[prefix_len].values())
        return out

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_len.values())
