"""Evaluation metrics: the quantities every figure and table in the paper reports.

* :func:`fraction_of_services` -- Equation 1: services found over services in
  the ground truth.
* :func:`normalized_fraction_of_services` -- Equation 2: the per-port fractions
  averaged over ports, so discovering all services of an uncommon port weighs
  as much as discovering all services of port 80.
* :func:`coverage_curve` / :func:`precision_curve` -- the
  bandwidth-versus-coverage and precision-versus-coverage series behind
  Figures 2, 3, 5 and 6, computed from a bandwidth-annotated discovery log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

Pair = Tuple[int, int]


@dataclass(frozen=True)
class CoveragePoint:
    """One point of a coverage-versus-bandwidth curve.

    Attributes:
        full_scans: cumulative bandwidth in units of 100 % scans.
        probes: cumulative probes sent.
        found: cumulative ground-truth services found.
        fraction: Equation 1 at this point.
        normalized_fraction: Equation 2 at this point.
        precision: ground-truth services found per probe sent so far.
    """

    full_scans: float
    probes: int
    found: int
    fraction: float
    normalized_fraction: float
    precision: float


def fraction_of_services(found_pairs: Iterable[Pair],
                         ground_truth_pairs: Set[Pair]) -> float:
    """Equation 1: |found ∩ ground truth| / |ground truth|."""
    if not ground_truth_pairs:
        return 0.0
    found = set(found_pairs) & ground_truth_pairs
    return len(found) / len(ground_truth_pairs)


def per_port_counts(pairs: Iterable[Pair]) -> Dict[int, int]:
    """Count services per port."""
    counts: Dict[int, int] = {}
    for _, port in pairs:
        counts[port] = counts.get(port, 0) + 1
    return counts


def normalized_fraction_of_services(found_pairs: Iterable[Pair],
                                    ground_truth_pairs: Set[Pair]) -> float:
    """Equation 2: average, over ports, of the per-port fraction found."""
    if not ground_truth_pairs:
        return 0.0
    truth_per_port = per_port_counts(ground_truth_pairs)
    found = set(found_pairs) & ground_truth_pairs
    found_per_port = per_port_counts(found)
    total = sum(
        found_per_port.get(port, 0) / count for port, count in truth_per_port.items()
    )
    return total / len(truth_per_port)


def coverage_curve(
    discovery_log: Sequence[Tuple[int, Sequence[Pair]]],
    ground_truth_pairs: Set[Pair],
    address_space_size: int,
) -> List[CoveragePoint]:
    """Turn a discovery log into a coverage-versus-bandwidth curve.

    Args:
        discovery_log: ordered ``(cumulative_probes, newly_discovered_pairs)``
            entries, as produced by :class:`repro.core.gps.GPS`.
        ground_truth_pairs: the evaluation ground truth (Equation 1/2
            denominators).
        address_space_size: addresses per "100 % scan" unit.

    Returns:
        One :class:`CoveragePoint` per log entry, cumulative in both bandwidth
        and coverage.
    """
    if address_space_size <= 0:
        raise ValueError("address_space_size must be positive")
    truth_per_port = per_port_counts(ground_truth_pairs)
    port_count = len(truth_per_port)
    truth_total = len(ground_truth_pairs)

    found_pairs: Set[Pair] = set()
    found_per_port: Dict[int, int] = {}
    normalized_sum = 0.0
    points: List[CoveragePoint] = []

    for cumulative_probes, new_pairs in discovery_log:
        for pair in new_pairs:
            if pair in ground_truth_pairs and pair not in found_pairs:
                found_pairs.add(pair)
                port = pair[1]
                found_per_port[port] = found_per_port.get(port, 0) + 1
                normalized_sum += 1.0 / truth_per_port[port]
        found = len(found_pairs)
        fraction = found / truth_total if truth_total else 0.0
        normalized = normalized_sum / port_count if port_count else 0.0
        precision = found / cumulative_probes if cumulative_probes else 0.0
        points.append(CoveragePoint(
            full_scans=cumulative_probes / address_space_size,
            probes=cumulative_probes,
            found=found,
            fraction=fraction,
            normalized_fraction=normalized,
            precision=precision,
        ))
    return points


def precision_curve(points: Sequence[CoveragePoint],
                    normalized: bool = False) -> List[Tuple[float, float]]:
    """Precision as a function of the fraction of services found (Figure 3)."""
    out: List[Tuple[float, float]] = []
    for point in points:
        x = point.normalized_fraction if normalized else point.fraction
        out.append((x, point.precision))
    return out


def bandwidth_to_reach(points: Sequence[CoveragePoint], target_fraction: float,
                       normalized: bool = False) -> float | None:
    """Bandwidth (in 100 % scans) at which the curve first reaches a coverage level.

    Returns ``None`` when the curve never reaches the target; used throughout
    the analysis layer to compute the "GPS saves N x bandwidth" statements.
    """
    if not 0.0 <= target_fraction <= 1.0:
        raise ValueError("target_fraction must be within [0, 1]")
    for point in points:
        value = point.normalized_fraction if normalized else point.fraction
        if value >= target_fraction:
            return point.full_scans
    return None


def bandwidth_savings(gps_points: Sequence[CoveragePoint],
                      baseline_points: Sequence[CoveragePoint],
                      target_fraction: float,
                      normalized: bool = False) -> float | None:
    """Ratio of baseline to GPS bandwidth at equal coverage (the paper's "N x less")."""
    gps_bandwidth = bandwidth_to_reach(gps_points, target_fraction, normalized)
    baseline_bandwidth = bandwidth_to_reach(baseline_points, target_fraction, normalized)
    if gps_bandwidth is None or baseline_bandwidth is None or gps_bandwidth == 0:
        return None
    return baseline_bandwidth / gps_bandwidth
