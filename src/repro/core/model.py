"""The conditional-probability (co-occurrence) model.

GPS's predictive engine is nothing more than conditional probabilities between
predictor tuples and target ports (Section 5.2):

    P(Port_a | predictor) = #hosts where predictor holds and Port_a is open
                            -----------------------------------------------
                                    #hosts where predictor holds

Because a predictor tuple embeds the port it was observed on, a host
contributes at most one occurrence per tuple, so both counts are plain host
counts.  The numerators for different predictors never interact, which is what
makes the computation "parallelizable across all 65K ports" in the paper's
terms; :func:`build_model_with_engine` expresses exactly the same computation
as a self-join + group-by on the parallel engine, and the test suite asserts
the two implementations produce identical probabilities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.config import ENGINE_MODES
from repro.core.features import HostFeatureColumns, HostFeatures, PredictorTuple
from repro.engine.columns import resolve_column_backend
from repro.engine.encoding import DictionaryEncoder
from repro.engine.fused import (
    fold_model_pairs_arrays,
    fold_value_counts_arrays,
    join_group_count,
)
from repro.engine.ops import group_count, hash_join
from repro.engine.parallel import (
    ExecutorConfig,
    partitioned_group_count,
    partitioned_join_group_count,
)
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.runtime import MODEL_PACK_BASE, EngineRuntime
from repro.engine.table import Table


@dataclass
class CooccurrenceModel:
    """Conditional probabilities P(target port | predictor tuple).

    Attributes:
        cooccurrence: ``predictor -> {target_port -> co-occurrence count}``.
        denominators: ``predictor -> number of hosts exhibiting the predictor``.
    """

    cooccurrence: Dict[PredictorTuple, Dict[int, int]] = field(default_factory=dict)
    denominators: Dict[PredictorTuple, int] = field(default_factory=dict)

    # -- queries -----------------------------------------------------------------

    def probability(self, predictor: PredictorTuple, target_port: int) -> float:
        """P(target_port open | predictor observed on the host)."""
        denom = self.denominators.get(predictor, 0)
        if denom == 0:
            return 0.0
        return self.cooccurrence.get(predictor, {}).get(target_port, 0) / denom

    def targets_for(self, predictor: PredictorTuple) -> Dict[int, float]:
        """All target ports with non-zero probability for a predictor."""
        denom = self.denominators.get(predictor, 0)
        if denom == 0:
            return {}
        return {
            port: count / denom
            for port, count in self.cooccurrence.get(predictor, {}).items()
        }

    def best_predictor(self, candidates: Iterable[PredictorTuple],
                       target_port: int,
                       min_support: int = 1) -> Tuple[Optional[PredictorTuple], float]:
        """The candidate predictor with the highest probability for a target port.

        Args:
            candidates: predictor tuples available on the host.
            target_port: the port whose probability is maximised.
            min_support: minimum number of seed hosts a predictor must have
                been observed on to be eligible.  Patterns seen on a single
                host (host-unique certificate hashes, SSH keys) trivially reach
                probability 1.0 but cannot generalise to new hosts; requiring
                support of at least two mirrors the paper's premise that GPS
                predicts services "given at least two responsive IP addresses
                on a port to train from".

        Ties are broken by support (more widely observed patterns first) and
        then by the predictor tuple itself, so the priors plan and the
        predictive-feature index are reproducible.
        """
        best: Optional[PredictorTuple] = None
        best_prob = 0.0
        best_support = 0
        for predictor in candidates:
            support = self.denominators.get(predictor, 0)
            if support < min_support:
                continue
            prob = self.probability(predictor, target_port)
            if prob <= 0.0:
                continue
            better = (prob > best_prob
                      or (prob == best_prob and support > best_support)
                      or (prob == best_prob and support == best_support
                          and best is not None and predictor < best))
            if better:
                best = predictor
                best_prob = prob
                best_support = support
        if best_prob == 0.0:
            return None, 0.0
        return best, best_prob

    def predictor_count(self) -> int:
        """Number of distinct predictor tuples seen in the seed set."""
        return len(self.denominators)

    def known_target_ports(self) -> List[int]:
        """All ports that appear as a prediction target, ascending."""
        ports = set()
        for targets in self.cooccurrence.values():
            ports.update(targets)
        return sorted(ports)


def build_model(host_features: Mapping[int, HostFeatures]) -> CooccurrenceModel:
    """Single-core reference implementation of model building.

    For each host, for each service's predictor tuples, count (a) the host
    toward the predictor's denominator and (b) every *other* open port of the
    host toward the predictor's co-occurrence counts.
    """
    model = CooccurrenceModel()
    for host in host_features.values():
        open_ports = list(host.ports)
        for port_b, predictors in host.ports.items():
            other_ports = [port for port in open_ports if port != port_b]
            for predictor in predictors:
                model.denominators[predictor] = model.denominators.get(predictor, 0) + 1
                if not other_ports:
                    continue
                targets = model.cooccurrence.setdefault(predictor, {})
                for port_a in other_ports:
                    targets[port_a] = targets.get(port_a, 0) + 1
    return model


# -- engine-backed implementation --------------------------------------------------------


def host_features_to_tables(host_features: Mapping[int, HostFeatures]) -> Tuple[Table, Table]:
    """Flatten host features into the two relations the engine query joins.

    Returns ``(features, ports)`` where ``features`` has one row per
    (host, service, predictor tuple) and ``ports`` one row per (host, open
    port) -- the shape the paper's BigQuery implementation materialises before
    its self-join.
    """
    feature_ips: List[int] = []
    feature_ports: List[int] = []
    feature_predictors: List[PredictorTuple] = []
    port_ips: List[int] = []
    port_ports: List[int] = []
    for host in host_features.values():
        ip = host.ip
        for port_b, predictors in host.ports.items():
            port_ips.append(ip)
            port_ports.append(port_b)
            for predictor in predictors:
                feature_ips.append(ip)
                feature_ports.append(port_b)
                feature_predictors.append(predictor)
    features = Table(columns={"ip": feature_ips, "port": feature_ports,
                              "predictor": feature_predictors})
    ports = Table(columns={"ip": port_ips, "port": port_ports})
    return features, ports


def host_feature_columns_to_tables(columns: HostFeatureColumns) -> Tuple[Table, Table]:
    """Flatten pre-encoded host-feature columns into the two join relations.

    The columnar-ingest twin of :func:`host_features_to_tables`: the
    ``predictor`` column already holds dense ids (the columns' own encoder
    decodes them), so the fused query skips its per-tuple encode pass
    entirely -- the expensive part of flattening from objects.
    """
    feature_ips: List[int] = []
    feature_ports: List[int] = []
    feature_pids: List[int] = []
    port_ips: List[int] = []
    port_ports: List[int] = []
    member_starts, labels = columns.member_starts, columns.ports
    value_starts, value_ids = columns.value_starts, columns.value_ids
    for g, ip in enumerate(columns.ips):
        for m in range(member_starts[g], member_starts[g + 1]):
            port = labels[m]
            port_ips.append(ip)
            port_ports.append(port)
            v_lo, v_hi = value_starts[m], value_starts[m + 1]
            run = v_hi - v_lo
            feature_ips.extend([ip] * run)
            feature_ports.extend([port] * run)
            feature_pids.extend(value_ids[v_lo:v_hi])
    encoded = Table(columns={"ip": feature_ips, "port": feature_ports,
                             "predictor": feature_pids})
    ports = Table(columns={"ip": port_ips, "port": port_ports})
    return encoded, ports


def build_model_with_engine(host_features: Union[Mapping[int, HostFeatures],
                                                 HostFeatureColumns],
                            executor: Optional[ExecutorConfig] = None,
                            mode: str = "fused",
                            runtime: Optional[EngineRuntime] = None,
                            dataset: Optional[ResidentHostGroups] = None,
                            column_backend: Optional[str] = None,
                            ) -> CooccurrenceModel:
    """Model building expressed as engine operations (the BigQuery analogue).

    ``host_features`` is either the per-host object mapping or the columnar
    ingest's pre-encoded :class:`~repro.core.features.HostFeatureColumns`
    (fused mode only): the columnar form skips both the object flatten and
    the per-tuple dictionary encode, reusing the ids the feature extractor
    already assigned.  Either form produces the identical model.

    The computation is: JOIN the feature relation with the port relation on
    the host address, drop self-pairs, GROUP BY (predictor, target port) to
    obtain the co-occurrence counts, and GROUP BY predictor over the feature
    relation to obtain the denominators.

    Two execution paths implement that query:

    * ``mode="fused"`` (default) dictionary-encodes predictor tuples to dense
      integer ids, then streams the feature relation through the
      port-relation hash index and folds directly into the co-occurrence
      counters (:func:`repro.engine.fused.join_group_count`); the quadratic
      joined relation is never materialized, every group key is a pair of
      small ints, and with a parallel ``executor`` contiguous chunks of the
      stream scatter across workers.  Predictor ids are decoded when the
      counters are reassembled into the model.
    * ``mode="legacy"`` materializes the full join as a table and group-counts
      it afterwards -- the original formulation, kept as a comparison
      baseline for the engine-scaling benchmark.

    The fused query can also run on the persistent execution runtime instead
    of per-call executors: ``runtime`` dispatches the streamed chunks to the
    runtime's long-lived workers, and ``dataset`` (a
    :class:`~repro.core.runtime_plans.ResidentHostGroups` already loaded
    into a runtime) folds the query against worker-resident shards without
    shipping the columns at all.

    ``column_backend`` selects the kernel backend for the buffer-backed fold
    paths (``None`` resolves through
    :func:`repro.engine.columns.resolve_column_backend`: the
    ``REPRO_COLUMN_BACKEND`` env var, defaulting to ``"stdlib"``).  With
    ``"numpy"``, the serial columnar build and the resident-dataset build
    fold their int64 column buffers through the vectorized kernels in
    :mod:`repro.engine.fused` instead of per-row Python loops.  The backend
    deliberately does not touch the legacy oracle or the object-table fused
    path -- those stay pure stdlib so they remain the equivalence baseline.

    All paths produce probabilities identical to :func:`build_model` (the
    oracle); the test suite asserts this on randomized inputs.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode: {mode!r} (expected one of {ENGINE_MODES})")
    columnar = isinstance(host_features, HostFeatureColumns)
    if columnar and mode != "fused":
        raise ValueError("columnar host features serve only the fused mode "
                         "(the legacy oracle ingests object rows)")
    if dataset is not None or runtime is not None:
        if mode != "fused":
            raise ValueError("the execution runtime serves only the fused mode")
        if executor is not None:
            raise ValueError("pass either executor or runtime/dataset, not both")
    backend = resolve_column_backend(column_backend)
    if dataset is not None:
        cooccurrence, denominators = dataset.model_counts(column_backend=backend)
        return CooccurrenceModel(cooccurrence=cooccurrence,
                                 denominators=denominators)
    executor = executor or (ExecutorConfig() if runtime is None else None)
    if not columnar:
        features, ports = host_features_to_tables(host_features)
    serial = (runtime is None and executor.backend == "serial"
              and executor.workers == 1)

    if mode == "fused":
        kernel_path = columnar and serial and backend == "numpy"
        if columnar:
            encoder = host_features.encoder
            if not kernel_path:
                encoded, ports = host_feature_columns_to_tables(host_features)
        else:
            encoder = DictionaryEncoder()
            encoded = Table(columns={
                "ip": features.columns["ip"],
                "port": features.columns["port"],
                "predictor": encoder.encode_column(features.columns["predictor"]),
            })
        if kernel_path:
            # Fold the pre-encoded column buffers directly through the
            # vectorized kernels: no table flatten, no per-row join loop.
            keys, counts = fold_model_pairs_arrays(
                host_features.member_starts, host_features.ports,
                host_features.value_starts, host_features.value_ids,
                MODEL_PACK_BASE)
            pair_counts = {
                divmod(key, MODEL_PACK_BASE): count
                for key, count in zip(keys.tolist(), counts.tolist())}
            denom_keys, denom_counts = fold_value_counts_arrays(
                host_features.value_ids)
            denom_items = zip(denom_keys.tolist(), denom_counts.tolist())
        elif serial:
            pair_counts = join_group_count(
                encoded, ports, on=("ip",), keys=("b_predictor", "a_port"),
                left_prefix="b_", right_prefix="a_",
                exclude_self_pairs_on=("b_port", "a_port"), int_keys=True)
            # GROUP BY the single encoded column is a bare Counter over it.
            denom_items = Counter(encoded.columns["predictor"]).items()
        else:
            pair_counts = partitioned_join_group_count(
                encoded, ports, on=("ip",), keys=("b_predictor", "a_port"),
                config=executor, left_prefix="b_", right_prefix="a_",
                exclude_self_pairs_on=("b_port", "a_port"), int_keys=True,
                runtime=runtime)
            denom_counts = partitioned_group_count(encoded, ("predictor",),
                                                   executor, runtime=runtime)
            denom_items = ((key[0], count) for key, count in denom_counts.items())
        # Reassemble grouped by encoded id first so each predictor tuple is
        # decoded once, not once per (predictor, port) pair.
        cooccurrence_by_id: Dict[int, Dict[int, int]] = {}
        for (predictor_id, port_a), count in pair_counts.items():
            targets = cooccurrence_by_id.get(predictor_id)
            if targets is None:
                targets = cooccurrence_by_id[predictor_id] = {}
            targets[port_a] = count
        decode = encoder.decode
        model = CooccurrenceModel()
        model.denominators = {decode(predictor_id): count
                              for predictor_id, count in denom_items}
        model.cooccurrence = {decode(predictor_id): targets
                              for predictor_id, targets in cooccurrence_by_id.items()}
        return model
    else:
        joined = hash_join(features, ports, on=("ip",),
                           left_prefix="b_", right_prefix="a_",
                           exclude_self_pairs_on=("b_port", "a_port"))
        if serial:
            pair_counts = group_count(joined, ("b_predictor", "a_port"))
            denom_counts = group_count(features, ("predictor",))
        else:
            pair_counts = partitioned_group_count(joined, ("b_predictor", "a_port"),
                                                  executor)
            denom_counts = partitioned_group_count(features, ("predictor",), executor)

    model = CooccurrenceModel()
    for (predictor,), count in denom_counts.items():
        model.denominators[predictor] = count
    for (predictor, port_a), count in pair_counts.items():
        model.cooccurrence.setdefault(predictor, {})[port_a] = count
    return model
