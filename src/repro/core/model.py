"""The conditional-probability (co-occurrence) model.

GPS's predictive engine is nothing more than conditional probabilities between
predictor tuples and target ports (Section 5.2):

    P(Port_a | predictor) = #hosts where predictor holds and Port_a is open
                            -----------------------------------------------
                                    #hosts where predictor holds

Because a predictor tuple embeds the port it was observed on, a host
contributes at most one occurrence per tuple, so both counts are plain host
counts.  The numerators for different predictors never interact, which is what
makes the computation "parallelizable across all 65K ports" in the paper's
terms; :func:`build_model_with_engine` expresses exactly the same computation
as a self-join + group-by on the parallel engine, and the test suite asserts
the two implementations produce identical probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.features import HostFeatures, PredictorTuple
from repro.engine.ops import group_count, hash_join
from repro.engine.parallel import ExecutorConfig, partitioned_group_count
from repro.engine.table import Table


@dataclass
class CooccurrenceModel:
    """Conditional probabilities P(target port | predictor tuple).

    Attributes:
        cooccurrence: ``predictor -> {target_port -> co-occurrence count}``.
        denominators: ``predictor -> number of hosts exhibiting the predictor``.
    """

    cooccurrence: Dict[PredictorTuple, Dict[int, int]] = field(default_factory=dict)
    denominators: Dict[PredictorTuple, int] = field(default_factory=dict)

    # -- queries -----------------------------------------------------------------

    def probability(self, predictor: PredictorTuple, target_port: int) -> float:
        """P(target_port open | predictor observed on the host)."""
        denom = self.denominators.get(predictor, 0)
        if denom == 0:
            return 0.0
        return self.cooccurrence.get(predictor, {}).get(target_port, 0) / denom

    def targets_for(self, predictor: PredictorTuple) -> Dict[int, float]:
        """All target ports with non-zero probability for a predictor."""
        denom = self.denominators.get(predictor, 0)
        if denom == 0:
            return {}
        return {
            port: count / denom
            for port, count in self.cooccurrence.get(predictor, {}).items()
        }

    def best_predictor(self, candidates: Iterable[PredictorTuple],
                       target_port: int,
                       min_support: int = 1) -> Tuple[Optional[PredictorTuple], float]:
        """The candidate predictor with the highest probability for a target port.

        Args:
            candidates: predictor tuples available on the host.
            target_port: the port whose probability is maximised.
            min_support: minimum number of seed hosts a predictor must have
                been observed on to be eligible.  Patterns seen on a single
                host (host-unique certificate hashes, SSH keys) trivially reach
                probability 1.0 but cannot generalise to new hosts; requiring
                support of at least two mirrors the paper's premise that GPS
                predicts services "given at least two responsive IP addresses
                on a port to train from".

        Ties are broken by support (more widely observed patterns first) and
        then by the predictor tuple itself, so the priors plan and the
        predictive-feature index are reproducible.
        """
        best: Optional[PredictorTuple] = None
        best_prob = 0.0
        best_support = 0
        for predictor in candidates:
            support = self.denominators.get(predictor, 0)
            if support < min_support:
                continue
            prob = self.probability(predictor, target_port)
            if prob <= 0.0:
                continue
            better = (prob > best_prob
                      or (prob == best_prob and support > best_support)
                      or (prob == best_prob and support == best_support
                          and best is not None and predictor < best))
            if better:
                best = predictor
                best_prob = prob
                best_support = support
        if best_prob == 0.0:
            return None, 0.0
        return best, best_prob

    def predictor_count(self) -> int:
        """Number of distinct predictor tuples seen in the seed set."""
        return len(self.denominators)

    def known_target_ports(self) -> List[int]:
        """All ports that appear as a prediction target, ascending."""
        ports = set()
        for targets in self.cooccurrence.values():
            ports.update(targets)
        return sorted(ports)


def build_model(host_features: Mapping[int, HostFeatures]) -> CooccurrenceModel:
    """Single-core reference implementation of model building.

    For each host, for each service's predictor tuples, count (a) the host
    toward the predictor's denominator and (b) every *other* open port of the
    host toward the predictor's co-occurrence counts.
    """
    model = CooccurrenceModel()
    for host in host_features.values():
        open_ports = list(host.ports)
        for port_b, predictors in host.ports.items():
            other_ports = [port for port in open_ports if port != port_b]
            for predictor in predictors:
                model.denominators[predictor] = model.denominators.get(predictor, 0) + 1
                if not other_ports:
                    continue
                targets = model.cooccurrence.setdefault(predictor, {})
                for port_a in other_ports:
                    targets[port_a] = targets.get(port_a, 0) + 1
    return model


# -- engine-backed implementation --------------------------------------------------------


def host_features_to_tables(host_features: Mapping[int, HostFeatures]) -> Tuple[Table, Table]:
    """Flatten host features into the two relations the engine query joins.

    Returns ``(features, ports)`` where ``features`` has one row per
    (host, service, predictor tuple) and ``ports`` one row per (host, open
    port) -- the shape the paper's BigQuery implementation materialises before
    its self-join.
    """
    feature_rows: List[Tuple[int, int, PredictorTuple]] = []
    port_rows: List[Tuple[int, int]] = []
    for host in host_features.values():
        for port_b, predictors in host.ports.items():
            port_rows.append((host.ip, port_b))
            for predictor in predictors:
                feature_rows.append((host.ip, port_b, predictor))
    features = Table.from_rows(("ip", "port", "predictor"), feature_rows)
    ports = Table.from_rows(("ip", "port"), port_rows)
    return features, ports


def build_model_with_engine(host_features: Mapping[int, HostFeatures],
                            executor: Optional[ExecutorConfig] = None) -> CooccurrenceModel:
    """Model building expressed as engine operations (the BigQuery analogue).

    The computation is: JOIN the feature relation with the port relation on
    the host address, drop self-pairs, GROUP BY (predictor, target port) to
    obtain the co-occurrence counts, and GROUP BY predictor over the feature
    relation to obtain the denominators.  With an ``executor`` the group-bys
    run hash-partitioned across workers.
    """
    executor = executor or ExecutorConfig()
    features, ports = host_features_to_tables(host_features)

    joined = hash_join(features, ports, on=("ip",),
                       left_prefix="b_", right_prefix="a_",
                       exclude_self_pairs_on=("b_port", "a_port"))

    if executor.backend == "serial" and executor.workers == 1:
        pair_counts = group_count(joined, ("b_predictor", "a_port"))
        denom_counts = group_count(features, ("predictor",))
    else:
        pair_counts = partitioned_group_count(joined, ("b_predictor", "a_port"), executor)
        denom_counts = partitioned_group_count(features, ("predictor",), executor)

    model = CooccurrenceModel()
    for (predictor,), count in denom_counts.items():
        model.denominators[predictor] = count
    for (predictor, port_a), count in pair_counts.items():
        model.cooccurrence.setdefault(predictor, {})[port_a] = count
    return model
