"""Predicting remaining services (Section 5.4).

Once the priors scan has surfaced at least one service per responsive host,
GPS uses the features of those services to predict every remaining service:

1. Build the **most predictive feature values list** from the seed set: for
   every service ``(IP, Port_a)`` in the seed, find the predictor tuple (from
   the host's *other* services) with the maximum ``P(Port_a)``; keep it if the
   probability clears the cut-off (1e-5, roughly the hit rate of random
   probing).  The list maps predictor tuples to the ports they predict.
2. For every service discovered by the priors scan, extract its predictor
   tuples and look them up in the list; every hit emits a predicted
   ``(IP, Port_a)`` pair.
3. The predictions list is ordered by probability, descending, so that the
   most predictable services are scanned first (this ordering is what gives
   GPS its precision profile in Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import FeatureConfig
from repro.core.features import (
    HostFeatures,
    PredictorTuple,
    network_feature_values,
    predictor_tuples_for_observation,
)
from repro.core.model import CooccurrenceModel
from repro.net.asn import AsnDatabase
from repro.scanner.records import ProbeBatch, ScanObservation, group_pairs

#: Prefix length prediction probes are grouped by before they reach the scan
#: pipeline's batched layers.  /16 matches the default network feature (the
#: granularity predictions naturally cluster at, since (Port, Net) patterns
#: emit one prediction per co-located host), so batches stay large without
#: reordering the probability-ordered schedule by more than a batch.
PREDICTION_BATCH_PREFIX_LEN = 16


@dataclass(frozen=True)
class PredictiveFeature:
    """One entry of the most-predictive-feature-values list."""

    predictor: PredictorTuple
    target_port: int
    probability: float


@dataclass(frozen=True)
class PredictedService:
    """One predicted (ip, port) target, with the pattern that produced it."""

    ip: int
    port: int
    probability: float
    predictor: PredictorTuple

    def pair(self) -> Tuple[int, int]:
        """The (ip, port) identity of the prediction."""
        return (self.ip, self.port)


class PredictiveFeatureIndex:
    """The "most predictive feature values" list, indexed for fast lookup."""

    def __init__(self, features: Iterable[PredictiveFeature]) -> None:
        self._by_predictor: Dict[PredictorTuple, Dict[int, float]] = {}
        for feature in features:
            targets = self._by_predictor.setdefault(feature.predictor, {})
            existing = targets.get(feature.target_port)
            if existing is None or feature.probability > existing:
                targets[feature.target_port] = feature.probability
        self._entry_count = sum(len(t) for t in self._by_predictor.values())

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        host_features: Mapping[int, HostFeatures],
        model: CooccurrenceModel,
        probability_cutoff: float = 1e-5,
        port_domain: Optional[Sequence[int]] = None,
        min_pattern_support: int = 2,
    ) -> "PredictiveFeatureIndex":
        """Build the index from the seed set (step 1 of the Section 5.4 algorithm).

        Every seed service that is predictable at all (it shares a host with at
        least one other service, and the best pattern clears the cut-off) is
        guaranteed to contribute the pattern most likely to find it -- the
        property the paper highlights as crucial to the algorithm.

        ``min_pattern_support`` requires the winning pattern to have been
        observed on at least that many seed hosts (default two): host-unique
        feature values reach probability 1.0 on their own host but cannot find
        services anywhere else, so preferring the best *supported* pattern is
        what lets the index generalise.  When no supported pattern exists for a
        service, the selection falls back to the unsupported ones so the
        service is still represented.
        """
        allowed: Optional[Set[int]] = set(port_domain) if port_domain is not None else None
        features: List[PredictiveFeature] = []
        for host in host_features.values():
            open_ports = host.open_ports()
            if len(open_ports) < 2:
                continue
            for port_a in open_ports:
                if allowed is not None and port_a not in allowed:
                    continue
                candidates: List[PredictorTuple] = []
                for port_b in open_ports:
                    if port_b != port_a:
                        candidates.extend(host.ports[port_b])
                predictor, probability = model.best_predictor(
                    candidates, port_a, min_support=min_pattern_support)
                if predictor is None:
                    predictor, probability = model.best_predictor(candidates, port_a)
                if predictor is None or probability < probability_cutoff:
                    continue
                features.append(PredictiveFeature(predictor=predictor,
                                                  target_port=port_a,
                                                  probability=probability))
        return cls(features)

    # -- queries -----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._entry_count

    def predictors(self) -> List[PredictorTuple]:
        """All predictor tuples present in the index."""
        return list(self._by_predictor)

    def targets_for(self, predictor: PredictorTuple) -> Dict[int, float]:
        """Ports predicted by one predictor tuple (with probabilities)."""
        return dict(self._by_predictor.get(predictor, {}))

    def entries(self) -> List[PredictiveFeature]:
        """All (predictor, target port, probability) entries, most probable first."""
        out = [
            PredictiveFeature(predictor=predictor, target_port=port, probability=prob)
            for predictor, targets in self._by_predictor.items()
            for port, prob in targets.items()
        ]
        out.sort(key=lambda f: (-f.probability, f.target_port))
        return out

    # -- prediction (steps 2-3) ----------------------------------------------------------

    def predict(
        self,
        observations: Iterable[ScanObservation],
        asn_db: Optional[AsnDatabase],
        feature_config: FeatureConfig,
        known_pairs: Optional[Set[Tuple[int, int]]] = None,
    ) -> List[PredictedService]:
        """Predict remaining services from discovered-service observations.

        Args:
            observations: services discovered so far (typically the priors
                scan results; the seed services' patterns are already encoded
                in the index itself).
            asn_db: ASN database for network feature extraction.
            feature_config: which predictor tuples to derive per observation.
            known_pairs: (ip, port) pairs already discovered; predictions for
                them are suppressed so bandwidth is not spent re-probing.

        Returns:
            Deduplicated predictions ordered by probability (descending), the
            order in which GPS probes them.
        """
        known = known_pairs or set()
        best: Dict[Tuple[int, int], PredictedService] = {}
        # Network-layer features depend only on the address, and hosts with
        # several discovered services appear once per service; memoize per IP
        # so the ASN lookup and subnet derivations run once per host.
        net_values_by_ip: Dict[int, List[Tuple[str, int]]] = {}
        for observation in observations:
            net_values = net_values_by_ip.get(observation.ip)
            if net_values is None:
                net_values = network_feature_values(
                    observation.ip, asn_db, feature_config.network_feature_kinds)
                net_values_by_ip[observation.ip] = net_values
            predictors = predictor_tuples_for_observation(observation, net_values,
                                                          feature_config)
            for predictor in predictors:
                targets = self._by_predictor.get(predictor)
                if not targets:
                    continue
                for target_port, probability in targets.items():
                    pair = (observation.ip, target_port)
                    if target_port == observation.port or pair in known:
                        continue
                    current = best.get(pair)
                    if current is None or probability > current.probability:
                        best[pair] = PredictedService(ip=observation.ip,
                                                      port=target_port,
                                                      probability=probability,
                                                      predictor=predictor)
        predictions = list(best.values())
        predictions.sort(key=lambda p: (-p.probability, p.ip, p.port))
        return predictions

    def predict_batches(
        self,
        observations: Iterable[ScanObservation],
        asn_db: Optional[AsnDatabase],
        feature_config: FeatureConfig,
        known_pairs: Optional[Set[Tuple[int, int]]] = None,
        prefix_len: int = PREDICTION_BATCH_PREFIX_LEN,
    ) -> List[ProbeBatch]:
        """Predict remaining services as per-(subnetwork, port) probe batches.

        The batched form of :meth:`predict` for the Section 5.4 prediction
        scan: the probability-ordered predictions are grouped into
        :class:`~repro.scanner.records.ProbeBatch` objects (batches in
        first-seen order, so the highest-probability region of each
        (subnetwork, port) group is probed first) ready for
        :meth:`repro.scanner.pipeline.ScanPipeline.scan_pair_batches`, which
        amortizes universe lookups and ledger charges across each batch.
        """
        predictions = self.predict(observations, asn_db, feature_config,
                                   known_pairs=known_pairs)
        return group_pairs((p.pair() for p in predictions), prefix_len)
