"""Predicting remaining services (Section 5.4).

Once the priors scan has surfaced at least one service per responsive host,
GPS uses the features of those services to predict every remaining service:

1. Build the **most predictive feature values list** from the seed set: for
   every service ``(IP, Port_a)`` in the seed, find the predictor tuple (from
   the host's *other* services) with the maximum ``P(Port_a)``; keep it if the
   probability clears the cut-off (1e-5, roughly the hit rate of random
   probing).  The list maps predictor tuples to the ports they predict.
2. For every service discovered by the priors scan, extract its predictor
   tuples and look them up in the list; every hit emits a predicted
   ``(IP, Port_a)`` pair.
3. The predictions list is ordered by probability, descending, so that the
   most predictable services are scanned first (this ordering is what gives
   GPS its precision profile in Figure 3).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import ENGINE_MODES, FeatureConfig
from repro.core.features import (
    HostFeatureColumns,
    HostFeatures,
    PredictorTuple,
    network_feature_values,
    predictor_tuples_for_observation,
)
from repro.core.model import CooccurrenceModel
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.encoding import DictionaryEncoder
from repro.engine.fused import FusedArgmaxPlan, argmax_partner_select
from repro.engine.parallel import ExecutorConfig, partitioned_argmax_partner_select
from repro.engine.runtime import EngineRuntime
from repro.net.asn import AsnDatabase
from repro.scanner.records import ProbeBatch, ScanObservation, group_pairs

#: Prefix length prediction probes are grouped by before they reach the scan
#: pipeline's batched layers.  /16 matches the default network feature (the
#: granularity predictions naturally cluster at, since (Port, Net) patterns
#: emit one prediction per co-located host), so batches stay large without
#: reordering the probability-ordered schedule by more than a batch.
PREDICTION_BATCH_PREFIX_LEN = 16

#: Upper bound on the per-index network-feature memo used by
#: :meth:`PredictiveFeatureIndex.predict`.  The memo persists across predict
#: calls (GPS rounds against the same universe hit the same hosts again), so
#: without a bound it would grow with every distinct address ever predicted
#: from; at the bound the least-recently-used entry is evicted, so hosts
#: that keep reappearing across rounds stay memoized under pressure.
NET_FEATURE_CACHE_MAX = 65536


@dataclass(frozen=True)
class PredictiveFeature:
    """One entry of the most-predictive-feature-values list."""

    predictor: PredictorTuple
    target_port: int
    probability: float


@dataclass(frozen=True)
class PredictedService:
    """One predicted (ip, port) target, with the pattern that produced it."""

    ip: int
    port: int
    probability: float
    predictor: PredictorTuple

    def pair(self) -> Tuple[int, int]:
        """The (ip, port) identity of the prediction."""
        return (self.ip, self.port)


class PredictiveFeatureIndex:
    """The "most predictive feature values" list, indexed for fast lookup."""

    def __init__(self, features: Iterable[PredictiveFeature]) -> None:
        self._by_predictor: Dict[PredictorTuple, Dict[int, float]] = {}
        for feature in features:
            targets = self._by_predictor.setdefault(feature.predictor, {})
            existing = targets.get(feature.target_port)
            if existing is None or feature.probability > existing:
                targets[feature.target_port] = feature.probability
        self._entry_count = sum(len(t) for t in self._by_predictor.values())
        # Bounded LRU memo for network_feature_values, shared across predict
        # calls; keyed per (asn_db, feature kinds) identity so an index
        # reused against a different universe never serves stale features.
        # One index is read by many serving threads concurrently, so every
        # structural cache operation (lookup+refresh, insert+evict, rekey)
        # holds the lock: an unguarded get/move_to_end pair races with
        # another thread's eviction and dies with KeyError.
        self._net_cache: "OrderedDict[int, List[Tuple[str, int]]]" = OrderedDict()
        self._net_cache_db: Optional[AsnDatabase] = None
        self._net_cache_kinds: Optional[Tuple[str, ...]] = None
        self._net_cache_lock = threading.Lock()

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        host_features: Mapping[int, HostFeatures],
        model: CooccurrenceModel,
        probability_cutoff: float = 1e-5,
        port_domain: Optional[Sequence[int]] = None,
        min_pattern_support: int = 2,
    ) -> "PredictiveFeatureIndex":
        """Build the index from the seed set (step 1 of the Section 5.4 algorithm).

        Every seed service that is predictable at all (it shares a host with at
        least one other service, and the best pattern clears the cut-off) is
        guaranteed to contribute the pattern most likely to find it -- the
        property the paper highlights as crucial to the algorithm.

        ``min_pattern_support`` requires the winning pattern to have been
        observed on at least that many seed hosts (default two): host-unique
        feature values reach probability 1.0 on their own host but cannot find
        services anywhere else, so preferring the best *supported* pattern is
        what lets the index generalise.  When no supported pattern exists for a
        service, the selection falls back to the unsupported ones so the
        service is still represented.
        """
        allowed: Optional[Set[int]] = set(port_domain) if port_domain is not None else None
        features: List[PredictiveFeature] = []
        for host in host_features.values():
            open_ports = host.open_ports()
            if len(open_ports) < 2:
                continue
            for port_a in open_ports:
                if allowed is not None and port_a not in allowed:
                    continue
                candidates: List[PredictorTuple] = []
                for port_b in open_ports:
                    if port_b != port_a:
                        candidates.extend(host.ports[port_b])
                predictor, probability = model.best_predictor(
                    candidates, port_a, min_support=min_pattern_support)
                if predictor is None:
                    predictor, probability = model.best_predictor(candidates, port_a)
                if predictor is None or probability < probability_cutoff:
                    continue
                features.append(PredictiveFeature(predictor=predictor,
                                                  target_port=port_a,
                                                  probability=probability))
        return cls(features)

    # -- queries -----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._entry_count

    def predictors(self) -> List[PredictorTuple]:
        """All predictor tuples present in the index."""
        return list(self._by_predictor)

    def targets_for(self, predictor: PredictorTuple) -> Dict[int, float]:
        """Ports predicted by one predictor tuple (with probabilities)."""
        return dict(self._by_predictor.get(predictor, {}))

    def entries(self) -> List[PredictiveFeature]:
        """All (predictor, target port, probability) entries, most probable first."""
        out = [
            PredictiveFeature(predictor=predictor, target_port=port, probability=prob)
            for predictor, targets in self._by_predictor.items()
            for port, prob in targets.items()
        ]
        out.sort(key=lambda f: (-f.probability, f.target_port))
        return out

    # -- prediction (steps 2-3) ----------------------------------------------------------

    def _net_values_cache(self, asn_db: Optional[AsnDatabase],
                          kinds: Tuple[str, ...],
                          ) -> "OrderedDict[int, List[Tuple[str, int]]]":
        """The bounded per-(asn_db, kinds) network-feature memo, reset on rekey.

        Callers must only touch the returned dict under
        ``self._net_cache_lock``; the rekey check itself takes the lock so a
        concurrent predict against a different universe cannot interleave
        with the swap and resurrect the stale dict.
        """
        with self._net_cache_lock:
            if self._net_cache_db is not asn_db or self._net_cache_kinds != kinds:
                self._net_cache = OrderedDict()
                self._net_cache_db = asn_db
                self._net_cache_kinds = kinds
            return self._net_cache

    def predict(
        self,
        observations: Iterable[ScanObservation],
        asn_db: Optional[AsnDatabase],
        feature_config: FeatureConfig,
        known_pairs: Optional[Set[Tuple[int, int]]] = None,
    ) -> List[PredictedService]:
        """Predict remaining services from discovered-service observations.

        Args:
            observations: services discovered so far (typically the priors
                scan results; the seed services' patterns are already encoded
                in the index itself).
            asn_db: ASN database for network feature extraction.
            feature_config: which predictor tuples to derive per observation.
            known_pairs: (ip, port) pairs already discovered; predictions for
                them are suppressed so bandwidth is not spent re-probing.

        Returns:
            Deduplicated predictions ordered by probability (descending), the
            order in which GPS probes them.
        """
        known = known_pairs or set()
        best: Dict[Tuple[int, int], PredictedService] = {}
        # Network-layer features depend only on the address, and hosts with
        # several discovered services appear once per service; memoize per IP
        # so the ASN lookup and subnet derivations run once per host.  The
        # memo lives on the index and persists across GPS rounds, but is
        # bounded (NET_FEATURE_CACHE_MAX, LRU eviction: a hit refreshes the
        # entry, the stalest entry goes first) so long-running multi-round
        # deployments cannot grow it without limit while hot hosts stay
        # memoized, and it is keyed per (asn_db, kinds) so reuse against
        # another universe resets it.  The serving layer calls predict from
        # many threads against one shared index, so the lookup+refresh and
        # evict+insert pairs each run atomically under the cache lock; the
        # feature derivation itself runs outside it (a concurrent duplicate
        # derivation wastes a little work but last-write-wins on identical
        # values, so nothing is lost or duplicated).
        net_cache = self._net_values_cache(
            asn_db, feature_config.network_feature_kinds)
        net_cache_lock = self._net_cache_lock
        limit = NET_FEATURE_CACHE_MAX
        for observation in observations:
            with net_cache_lock:
                net_values = net_cache.get(observation.ip)
                if net_values is not None:
                    net_cache.move_to_end(observation.ip)
            if net_values is None:
                net_values = network_feature_values(
                    observation.ip, asn_db, feature_config.network_feature_kinds)
                with net_cache_lock:
                    while len(net_cache) >= limit:
                        net_cache.popitem(last=False)
                    net_cache[observation.ip] = net_values
            predictors = predictor_tuples_for_observation(observation, net_values,
                                                          feature_config)
            for predictor in predictors:
                targets = self._by_predictor.get(predictor)
                if not targets:
                    continue
                for target_port, probability in targets.items():
                    pair = (observation.ip, target_port)
                    if target_port == observation.port or pair in known:
                        continue
                    current = best.get(pair)
                    if current is None or probability > current.probability:
                        best[pair] = PredictedService(ip=observation.ip,
                                                      port=target_port,
                                                      probability=probability,
                                                      predictor=predictor)
        predictions = list(best.values())
        predictions.sort(key=lambda p: (-p.probability, p.ip, p.port))
        return predictions

    def predict_batches(
        self,
        observations: Iterable[ScanObservation],
        asn_db: Optional[AsnDatabase],
        feature_config: FeatureConfig,
        known_pairs: Optional[Set[Tuple[int, int]]] = None,
        prefix_len: int = PREDICTION_BATCH_PREFIX_LEN,
    ) -> List[ProbeBatch]:
        """Predict remaining services as per-(subnetwork, port) probe batches.

        The batched form of :meth:`predict` for the Section 5.4 prediction
        scan: the probability-ordered predictions are grouped into
        :class:`~repro.scanner.records.ProbeBatch` objects (batches in
        first-seen order, so the highest-probability region of each
        (subnetwork, port) group is probed first) ready for
        :meth:`repro.scanner.pipeline.ScanPipeline.scan_pair_batches`, which
        amortizes universe lookups and ledger charges across each batch.
        """
        predictions = self.predict(observations, asn_db, feature_config,
                                   known_pairs=known_pairs)
        return group_pairs((p.pair() for p in predictions), prefix_len)


# -- engine-backed index construction ----------------------------------------------------


def compile_prediction_index_query(
    host_features: Mapping[int, HostFeatures],
    model: CooccurrenceModel,
    port_domain: Optional[Sequence[int]] = None,
    min_pattern_support: int = 2,
    probability_cutoff: float = 1e-5,
) -> Tuple[FusedArgmaxPlan, DictionaryEncoder]:
    """Flatten the Section 5.4 index build into a fused argmax plan.

    Hosts with at least two services become groups, services become members
    labelled by port, and each service's predictor tuples are
    dictionary-encoded into the plan's flat integer columns (single-service
    hosts contribute nothing to the index and are omitted outright).  The
    model's count rows and supports are referenced once per *distinct*
    predictor tuple -- after compilation the per-service argmax runs entirely
    on small ints -- and ``tie_ranks`` orders the ids by their decoded tuples
    so ties break exactly as
    :meth:`~repro.core.model.CooccurrenceModel.best_predictor` breaks them.

    Returns the plan together with the encoder that decodes winning ids back
    to predictor tuples.

    Pre-encoded :class:`~repro.core.features.HostFeatureColumns` compile
    verbatim -- single-service hosts stay in the columns because the argmax
    fold skips sub-two-member groups itself, and the side tables cover the
    ingest encoder's full id space (a superset of what an object compile
    would encode; ranks over a superset preserve every pairwise tie-break,
    so the winner list is identical).
    """
    if isinstance(host_features, HostFeatureColumns):
        encoder = host_features.encoder
        member_starts = host_features.member_starts
        labels = host_features.ports
        value_starts = host_features.value_starts
        value_ids = host_features.value_ids
    else:
        encoder = DictionaryEncoder()
        member_starts: List[int] = [0]
        labels: List[int] = []
        value_starts: List[int] = [0]
        value_ids: List[int] = []
        for host in host_features.values():
            open_ports = host.open_ports()
            if len(open_ports) < 2:
                continue
            for port in open_ports:
                labels.append(port)
                value_ids.extend(encoder.encode_column(host.ports[port]))
                value_starts.append(len(value_ids))
            member_starts.append(len(labels))

    model_denominators = model.denominators
    model_cooccurrence = model.cooccurrence
    no_targets: Dict[int, int] = {}
    target_counts: List[Dict[int, int]] = []
    denominators: List[int] = []
    values = encoder.values()
    for predictor in values:
        denom = model_denominators.get(predictor, 0)
        targets = model_cooccurrence.get(predictor) if denom else None
        if targets:
            target_counts.append(targets)
            denominators.append(denom)
        else:
            # Unknown predictor, zero support or no co-occurrences: scores 0
            # for every port, exactly as CooccurrenceModel.probability
            # reports it, so the fold skips the row outright.
            target_counts.append(no_targets)
            denominators.append(0)

    # Rank ids by decoded tuple order: the reference tie-break compares the
    # predictor tuples themselves, while ids are first-seen-ordered.
    tie_ranks = [0] * len(values)
    for rank, value_index in enumerate(sorted(range(len(values)),
                                              key=values.__getitem__)):
        tie_ranks[value_index] = rank

    plan = FusedArgmaxPlan(
        member_starts=tuple(member_starts),
        labels=tuple(labels),
        value_starts=tuple(value_starts),
        value_ids=tuple(value_ids),
        target_counts=tuple(target_counts),
        denominators=tuple(denominators),
        tie_ranks=tuple(tie_ranks),
        allowed_labels=frozenset(port_domain) if port_domain is not None else None,
        min_support=min_pattern_support,
        probability_cutoff=probability_cutoff,
    )
    return plan, encoder


def build_prediction_index_with_engine(
    host_features: Mapping[int, HostFeatures],
    model: CooccurrenceModel,
    probability_cutoff: float = 1e-5,
    port_domain: Optional[Sequence[int]] = None,
    min_pattern_support: int = 2,
    executor: Optional[ExecutorConfig] = None,
    mode: str = "fused",
    runtime: Optional[EngineRuntime] = None,
    dataset: Optional[ResidentHostGroups] = None,
) -> PredictiveFeatureIndex:
    """The Section 5.4 index build on the fused engine (the Table 2 story).

    Produces a :class:`PredictiveFeatureIndex` identical to
    :meth:`PredictiveFeatureIndex.from_seed` (the oracle; the test suite
    asserts entry-for-entry equality, tie cases included), but executes as a
    streaming argmax over dictionary-encoded columns
    (:func:`repro.engine.fused.argmax_partner_select`): count rows bind once
    per distinct predictor tuple and per-service selection runs on flat int
    columns instead of re-hashing nested tuples per candidate.  With a
    parallel ``executor``, contiguous host chunks scatter across workers.

    Args:
        host_features: per-host features extracted from the seed observations.
        model: the co-occurrence model built from the same seed set.
        probability_cutoff: minimum probability for an index entry.
        port_domain: optional target-port whitelist.
        min_pattern_support: preferred-tier support floor (see ``from_seed``).
        executor: parallel engine configuration; ``None`` runs serially.
        mode: ``"fused"`` (default) or ``"legacy"`` (delegates to the
            reference implementation, kept as the equivalence oracle).
        runtime: dispatch the compiled plan's chunks to a persistent
            :class:`~repro.engine.runtime.EngineRuntime` instead of a
            per-call pool.
        dataset: a :class:`~repro.core.runtime_plans.ResidentHostGroups`
            already loaded from the same ``host_features``: the argmax then
            folds against worker-resident shards, shipping only the model's
            score tables (once) and the thresholds.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode: {mode!r} (expected one of {ENGINE_MODES})")
    if (dataset is not None or runtime is not None) and mode != "fused":
        raise ValueError("the execution runtime serves only the fused mode")
    if mode == "legacy":
        if isinstance(host_features, HostFeatureColumns):
            raise ValueError("columnar host features serve only the fused mode "
                             "(the legacy oracle ingests object rows)")
        return PredictiveFeatureIndex.from_seed(
            host_features, model,
            probability_cutoff=probability_cutoff,
            port_domain=port_domain,
            min_pattern_support=min_pattern_support,
        )
    if dataset is not None:
        return PredictiveFeatureIndex(
            PredictiveFeature(predictor=predictor, target_port=label,
                              probability=probability)
            for label, predictor, probability in dataset.argmax_winners(
                model, port_domain=port_domain,
                min_pattern_support=min_pattern_support,
                probability_cutoff=probability_cutoff)
        )
    plan, encoder = compile_prediction_index_query(
        host_features, model,
        port_domain=port_domain,
        min_pattern_support=min_pattern_support,
        probability_cutoff=probability_cutoff,
    )
    serial = (runtime is None
              and (executor is None
                   or (executor.backend == "serial" and executor.workers == 1)))
    if runtime is not None:
        winners = partitioned_argmax_partner_select(plan, runtime=runtime)
    elif serial:
        winners = argmax_partner_select(plan)
    else:
        winners = partitioned_argmax_partner_select(plan, executor)
    decode = encoder.decode
    return PredictiveFeatureIndex(
        PredictiveFeature(predictor=decode(value_id), target_port=label,
                          probability=probability)
        for label, value_id, probability in winners
    )
