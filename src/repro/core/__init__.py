"""GPS core: the paper's primary contribution.

The modules in this package implement the four-phase GPS system described in
Section 5 of the paper:

1. :mod:`repro.core.config` -- user-facing configuration (seed size, scanning
   step size, feature selection, bandwidth budget, compute backend);
2. :mod:`repro.core.features` -- extraction of the transport-, application-
   and network-layer predictor tuples of Expressions 4-7;
3. :mod:`repro.core.model` -- the conditional-probability (co-occurrence)
   model, with a single-core reference implementation and an implementation
   on the parallel engine;
4. :mod:`repro.core.priors` -- planning the "priors scan" that finds the first
   service of every responsive host (Section 5.3);
5. :mod:`repro.core.predictions` -- the "most predictive feature values" index
   and the prediction of remaining services (Section 5.4);
6. :mod:`repro.core.gps` -- the orchestrator tying the phases together against
   a scan pipeline, producing a bandwidth-annotated discovery log;
7. :mod:`repro.core.metrics` -- the paper's evaluation metrics (fraction of
   services, normalized services, precision, coverage-vs-bandwidth curves).
"""

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.features import (
    HostFeatures,
    extract_host_features,
    network_feature_values,
    predictor_tuples_for_observation,
)
from repro.core.model import CooccurrenceModel, build_model, build_model_with_engine
from repro.core.priors import PriorsEntry, build_priors_plan
from repro.core.predictions import (
    PredictedService,
    PredictiveFeature,
    PredictiveFeatureIndex,
)
from repro.core.gps import GPS, DiscoveryBatch, GPSRunResult
from repro.core.metrics import (
    coverage_curve,
    fraction_of_services,
    normalized_fraction_of_services,
    precision_curve,
)

__all__ = [
    "FeatureConfig",
    "GPSConfig",
    "HostFeatures",
    "extract_host_features",
    "network_feature_values",
    "predictor_tuples_for_observation",
    "CooccurrenceModel",
    "build_model",
    "build_model_with_engine",
    "PriorsEntry",
    "build_priors_plan",
    "PredictiveFeature",
    "PredictiveFeatureIndex",
    "PredictedService",
    "GPS",
    "DiscoveryBatch",
    "GPSRunResult",
    "fraction_of_services",
    "normalized_fraction_of_services",
    "coverage_curve",
    "precision_curve",
]
