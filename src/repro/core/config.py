"""GPS configuration objects.

GPS exposes exactly the knobs the paper describes as user parameters:

* the **seed size** (what fraction of the address space the seed scan probes,
  Section 5.1 / Appendix D.2);
* the **scanning step size** (the prefix length exhaustively scanned around a
  seed service when predicting first services, Section 5.3 / Appendix D.1);
* the **feature set** (which application- and network-layer features the model
  may use, Table 1 / Appendix C);
* the **bandwidth budget** ``c1`` (Equation 3) that caps total probes;
* the **probability cut-off** below which a pattern is considered random noise
  (Section 5.4 uses 1e-5, roughly the hit rate of random probing);
* the **compute backend** used for model building and priors planning (single
  core vs parallel engine, and the fused vs legacy engine path,
  Section 5.5 / Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.engine.columns import COLUMN_BACKENDS
from repro.engine.faults import FaultPlan
from repro.engine.parallel import ExecutorConfig
from repro.engine.runtime import RUNTIME_EXECUTORS
from repro.internet.banners import APP_FEATURE_KEYS

#: Network-layer feature kinds GPS can be configured with.  Appendix C
#: evaluates /16-/23 subnets plus the ASN and finds the ASN and /16 most
#: predictive; the final configuration (and our default) uses those two.
NETWORK_FEATURE_KINDS = (
    "asn",
    "subnet16",
    "subnet17",
    "subnet18",
    "subnet19",
    "subnet20",
    "subnet21",
    "subnet22",
    "subnet23",
)

DEFAULT_NETWORK_KINDS = ("asn", "subnet16")

#: Engine execution paths for model building, priors planning and the
#: prediction-index build (``GPSConfig.engine_mode`` /
#: :func:`repro.core.model.build_model_with_engine` /
#: :func:`repro.core.priors.build_priors_plan_with_engine` /
#: :func:`repro.core.predictions.build_prediction_index_with_engine`).
ENGINE_MODES = ("fused", "legacy")

#: Application-layer feature keys (Table 1) excluding the protocol fingerprint,
#: which is always available and handled explicitly.
DEFAULT_APP_FEATURE_KEYS = tuple(key for key in APP_FEATURE_KEYS)


@dataclass(frozen=True)
class FeatureConfig:
    """Which features GPS extracts from each discovered service.

    Attributes:
        app_feature_keys: application-layer banner fields used as features
            (Table 1).  ``protocol`` is a legitimate member: the paper's most
            predictive single feature is (Port, Port's protocol), Table 3.
        network_feature_kinds: network-layer features ("asn" and/or
            "subnetNN" for NN in 16-23).
        include_transport_only: include the bare (Port_b) predictor
            (Expression 4).  Disabling it is only meaningful for ablations.
        include_app: include (Port_b, App) predictors (Expression 5).
        include_network: include (Port_b, Net) predictors (Expression 6).
        include_app_network: include (Port_b, App, Net) predictors
            (Expression 7).
    """

    app_feature_keys: Tuple[str, ...] = DEFAULT_APP_FEATURE_KEYS
    network_feature_kinds: Tuple[str, ...] = DEFAULT_NETWORK_KINDS
    include_transport_only: bool = True
    include_app: bool = True
    include_network: bool = True
    include_app_network: bool = True

    def __post_init__(self) -> None:
        for kind in self.network_feature_kinds:
            if kind not in NETWORK_FEATURE_KINDS:
                raise ValueError(f"unknown network feature kind: {kind}")
        if not (self.include_transport_only or self.include_app
                or self.include_network or self.include_app_network):
            raise ValueError("at least one predictor family must be enabled")

    def transport_only(self) -> "FeatureConfig":
        """An ablated copy using only Expression 4 (port-to-port correlations)."""
        return FeatureConfig(
            app_feature_keys=(),
            network_feature_kinds=(),
            include_transport_only=True,
            include_app=False,
            include_network=False,
            include_app_network=False,
        )


@dataclass(frozen=True)
class GPSConfig:
    """Top-level GPS configuration.

    Attributes:
        seed_fraction: fraction of the address space probed by the seed scan
            (only used when GPS collects its own seed; in dataset-split mode
            the seed is supplied and this records its nominal size for
            bandwidth accounting).
        step_size: scanning step size as a prefix length (``16`` means each
            priors entry exhaustively sweeps a /16; ``0`` sweeps the whole
            address space for that port).
        probability_cutoff: minimum conditional probability for a pattern to
            enter the most-predictive-feature list (Section 5.4, 1e-5).
        min_pattern_support: minimum number of seed hosts a pattern must have
            been observed on to be preferred in the most-predictive-feature
            list (patterns below the threshold are only used as a fallback).
            Mirrors the paper's premise of training from "at least two
            responsive IP addresses on a port".
        port_domain: optional port whitelist.  The Censys-style experiments
            restrict GPS to the dataset's 2K ports; ``None`` means all 65,535.
        max_full_scans: bandwidth budget ``c1`` in units of 100 % scans
            (``None`` = unbounded; the analysis layer can still cut the
            discovery log at any budget afterwards).
        feature_config: which features the model uses.
        seed_scan_seed: RNG seed for the seed scan's address sample.
        prediction_batch_size: how many predicted (ip, port) probes are sent
            per batch.  Affects the granularity of the discovery log and of
            the budget check; inside each batch the probes are additionally
            grouped per (subnetwork, port) for the pipeline's batched
            scanner layers, which changes bookkeeping cost but not what is
            probed or charged.
        use_engine: run model building (Section 5.2), priors planning
            (Section 5.3) and the prediction-index build (Section 5.4) on
            the engine layer rather than the single-core dictionary
            implementations.
        engine_mode: which engine execution path to use when ``use_engine``
            is set.  Valid values are ``"fused"`` (the default: streaming
            operators over dictionary-encoded columns --
            :func:`repro.engine.fused.join_group_count` for the model,
            :func:`repro.engine.fused.partner_group_count` for the priors
            plan and :func:`repro.engine.fused.argmax_partner_select` for
            the most-predictive-feature index -- never materializing the
            joined relation) and ``"legacy"`` (the original formulations:
            materialized self-join for the model, per-host dict loops for
            the priors plan and the feature index; kept as the benchmark
            baseline and equivalence oracle).  All modes produce identical
            models, priors plans and feature indices; the Table 2
            "computation" benchmarks (``BENCH_engine.json``,
            ``BENCH_priors.json``) quantify the difference.
        executor: how engine queries execute.  Either an
            :class:`~repro.engine.parallel.ExecutorConfig` (the per-call
            scatter backends: a fresh pool is created for every engine
            operation) or the name of a persistent-runtime executor --
            ``"serial"``, ``"thread"`` or ``"pool"`` -- in which case the
            :class:`GPS` orchestrator owns one
            :class:`~repro.engine.runtime.EngineRuntime` for its lifetime:
            workers start once, the seed's encoded columns load into them
            once per run, and the model, priors and prediction-index builds
            all execute against the resident shards
            (``BENCH_runtime.json`` quantifies the difference against
            per-call spawn).
        num_workers: worker count for the persistent runtime (``0`` selects
            the machine default); ignored when ``executor`` is an
            :class:`~repro.engine.parallel.ExecutorConfig`.
        shard_count: how many shards resident datasets are partitioned into
            (``0`` means one per worker); ignored for per-call executors.
        max_task_retries: recovery rounds the persistent pool may spend
            respawning dead workers (and re-loading their shards) per
            dispatch before a crash surfaces as
            :class:`~repro.engine.runtime.WorkerCrashError`; ``0`` restores
            the old fail-fast behaviour.
        task_deadline_s: seconds the runtime waits without *any* worker
            reply before raising
            :class:`~repro.engine.runtime.WorkerTimeoutError` with a process
            dump (``None`` disables; a wedged worker then blocks forever).
        execution_deadline_s: wall-clock budget for one whole runtime
            dispatch (``None`` disables).
        fault_plan: deterministic chaos plan
            (:class:`~repro.engine.faults.FaultPlan`) injected into the
            runtime's workers and the scan pipeline; testing and drills
            only -- leave ``None`` in production.
        column_backend: kernel backend for the fused folds over
            buffer-backed columns -- ``"stdlib"`` (pure-Python loops, the
            default and the equivalence oracle) or ``"numpy"`` (vectorized
            bulk passes that release the GIL; requires numpy).  ``None``
            falls through to the ``REPRO_COLUMN_BACKEND`` environment
            variable (see :mod:`repro.engine.columns`).  Only the fused
            columnar folds are affected; the legacy oracle always runs
            stdlib.  Requesting ``"numpy"`` without numpy installed raises
            at build time rather than silently degrading.
        telemetry_enabled: create a :class:`~repro.telemetry.Telemetry`
            instance for the run -- per-phase spans, engine/scan metrics.
            Off by default: telemetry must never tax a run that did not
            ask for it.
        telemetry_sample_every: record every Nth per-task latency
            observation (1 records all).  Counters, gauges and spans are
            never sampled.
    """

    seed_fraction: float = 0.01
    step_size: int = 16
    probability_cutoff: float = 1e-5
    min_pattern_support: int = 2
    port_domain: Optional[Tuple[int, ...]] = None
    max_full_scans: Optional[float] = None
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)
    seed_scan_seed: int = 0
    prediction_batch_size: int = 2000
    use_engine: bool = False
    engine_mode: str = "fused"
    executor: Union[str, ExecutorConfig] = field(default_factory=ExecutorConfig)
    num_workers: int = 0
    shard_count: int = 0
    max_task_retries: int = 2
    task_deadline_s: Optional[float] = None
    execution_deadline_s: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None
    column_backend: Optional[str] = None
    telemetry_enabled: bool = False
    telemetry_sample_every: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.seed_fraction <= 1.0:
            raise ValueError(f"seed_fraction out of range: {self.seed_fraction}")
        if not 0 <= self.step_size <= 32:
            raise ValueError(f"step_size must be a prefix length 0-32: {self.step_size}")
        if self.probability_cutoff < 0:
            raise ValueError("probability_cutoff must be non-negative")
        if self.min_pattern_support < 1:
            raise ValueError("min_pattern_support must be >= 1")
        if self.max_full_scans is not None and self.max_full_scans <= 0:
            raise ValueError("max_full_scans must be positive when set")
        if self.prediction_batch_size < 1:
            raise ValueError("prediction_batch_size must be >= 1")
        if self.engine_mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine_mode: {self.engine_mode!r}")
        if isinstance(self.executor, str):
            if self.executor not in RUNTIME_EXECUTORS:
                raise ValueError(
                    f"unknown executor: {self.executor!r} "
                    f"(expected one of {RUNTIME_EXECUTORS} or an ExecutorConfig)")
            # A runtime executor that cannot run is a misconfiguration, not a
            # preference: fail loudly instead of silently measuring the
            # single-core reference path.
            if not self.use_engine:
                raise ValueError(
                    "a runtime executor name requires use_engine=True "
                    "(without the engine there is nothing for the runtime to run)")
            if self.engine_mode != "fused":
                raise ValueError(
                    "the execution runtime serves only engine_mode='fused'; "
                    "use an ExecutorConfig for the legacy baseline")
        elif not isinstance(self.executor, ExecutorConfig):
            raise TypeError(
                "executor must be a runtime executor name or an ExecutorConfig")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 selects the default)")
        if self.shard_count < 0:
            raise ValueError("shard_count must be >= 0 (0 selects one per worker)")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        for name, deadline in (("task_deadline_s", self.task_deadline_s),
                               ("execution_deadline_s", self.execution_deadline_s)):
            if deadline is not None and deadline <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan or None")
        if (self.column_backend is not None
                and self.column_backend not in COLUMN_BACKENDS):
            raise ValueError(
                f"unknown column_backend: {self.column_backend!r} "
                f"(expected one of {COLUMN_BACKENDS} or None)")
        if self.telemetry_sample_every < 1:
            raise ValueError("telemetry_sample_every must be >= 1")
        if self.port_domain is not None:
            for port in self.port_domain:
                if not 1 <= port <= 65535:
                    raise ValueError(f"invalid port in port_domain: {port}")

    def port_allowed(self, port: int) -> bool:
        """Whether a port is inside the configured port domain."""
        return self.port_domain is None or port in set(self.port_domain)
