"""Resident host-group datasets: one data load serving all three GPS builds.

The three Table 2 "computation" queries -- model build (Section 5.2), priors
planning (Section 5.3) and the prediction-index build (Section 5.4) -- all
fold over the same underlying relation: hosts owning services owning
dictionary-encoded predictor tuples.  The per-call engine paths re-flatten
and re-ship that relation for every build; :class:`ResidentHostGroups`
flattens it **once**, hash-shards it (:mod:`repro.engine.shard`) and loads
each shard into a persistent :class:`~repro.engine.runtime.EngineRuntime`
worker, where it stays resident.  Each subsequent build then ships only its
plan parameters:

* :meth:`model_counts` -- the co-occurrence fold runs as a shard-local
  self-join derived worker-side from the resident columns (ships nothing);
* :meth:`priors_coverage` / :meth:`argmax_winners` -- the model's score
  tables broadcast once (:meth:`ensure_sides`), after which each call ships
  only the port whitelist and thresholds.

Every result is bit-identical to the serial fused operators (and therefore
to the single-core oracles): counter merges are order-independent, and the
order-sensitive argmax winner list is reassembled into exact host order via
the shards' ``group_order`` columns.

The module is deliberately blind to concrete core types -- host features and
models are used through their attribute surface only -- so
:mod:`repro.core.model`, :mod:`repro.core.priors` and
:mod:`repro.core.predictions` can all call into it without import cycles.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.encoding import DictionaryEncoder
from repro.engine.parallel import merge_counters
from repro.engine.runtime import MODEL_PACK_BASE, EngineRuntime
from repro.engine.shard import merge_ordered, shard_group_columns
from repro.net.ipv4 import subnet_key

__all__ = ["ResidentHostGroups"]

#: Distinct runtime keys per process, so two live datasets never collide in
#: the workers' resident stores.
_KEY_COUNTER = itertools.count()


def _merge_packed(per_shard: Sequence[Tuple[Any, Any]]) -> Dict[int, int]:
    """Merge per-shard packed ``(keys, counts)`` column pairs into one dict.

    The vectorized fold kernels return parallel int64 columns instead of
    dicts; the merge builds the combined mapping exactly once driver-side
    (``.tolist()`` unboxes each buffer in a single C pass).
    """
    merged: Dict[int, int] = {}
    for keys, counts in per_shard:
        if not merged:
            merged = dict(zip(keys.tolist(), counts.tolist()))
            continue
        get = merged.get
        for key, count in zip(keys.tolist(), counts.tolist()):
            merged[key] = get(key, 0) + count
    return merged


class ResidentHostGroups:
    """The host/service/predictor relation, resident in a runtime's workers.

    Constructing the dataset flattens ``host_features`` into group-structured
    columns (groups = hosts keyed by their ``step_size`` subnet, members =
    services labelled by port in ascending order, values = predictor-tuple
    ids interned through one shared :class:`DictionaryEncoder`), shards them
    by the stable hash of the host address, and ships each shard to its
    runtime worker exactly once.  The encoder stays driver-side: workers
    only ever see dense ids, the driver decodes results.

    The dataset must be :meth:`release`-d when the run is done (the GPS
    orchestrator does this in a ``finally``); the runtime itself stays up
    for the next dataset.

    Worker crashes are transparent at this layer: the pool backend keeps a
    coordinator-side copy of every payload shipped through
    ``runtime.load_shards`` / ``load_broadcast``, so a worker that dies
    mid-build is respawned with exactly its shards re-loaded and the
    interrupted folds re-dispatched -- results stay bit-identical (pure
    tasks, order-independent counter merges, ``merge_ordered`` re-ordering).
    :attr:`recovery_stats` exposes what the supervisor had to do.
    """

    def __init__(self, runtime: EngineRuntime, host_features: Any,
                 step_size: int, key: Optional[str] = None) -> None:
        """Flatten (if needed), shard and load the host features.

        Args:
            runtime: the persistent runtime whose workers hold the shards.
            host_features: the host/service/predictor relation -- either a
                per-host mapping (see
                :class:`repro.core.features.HostFeatures`), which is
                flattened and dictionary-encoded here, or pre-encoded flat
                columns (:class:`repro.core.features.HostFeatureColumns`,
                recognized structurally by their ``value_ids`` column),
                which shard as-is: the columnar ingest already holds exactly
                the layout the workers need, so no flatten-from-objects
                pre-pass runs at all and the columns' encoder is shared.
            step_size: prefix length for the priors planner's subnet group
                keys (0-32).
            key: resident-store key; auto-generated (unique per process)
                when omitted.
        """
        if not 0 <= step_size <= 32:
            raise ValueError(f"step_size must be a prefix length 0-32: {step_size}")
        self.runtime = runtime
        self.step_size = step_size
        self.key = key if key is not None else f"host-groups-{next(_KEY_COUNTER)}"
        self._sides_model: Optional[Any] = None
        self._released = False

        if hasattr(host_features, "value_ids"):
            self.encoder = host_features.encoder
            assign_keys = host_features.ips
            group_keys = [subnet_key(ip, step_size) for ip in assign_keys]
            member_starts = host_features.member_starts
            labels = host_features.ports
            value_starts = host_features.value_starts
            value_ids = host_features.value_ids
        else:
            self.encoder = DictionaryEncoder()
            assign_keys = []
            group_keys = []
            member_starts = [0]
            labels = []
            value_starts = [0]
            value_ids = []
            encode_column = self.encoder.encode_column
            for host in host_features.values():
                assign_keys.append(host.ip)
                group_keys.append(subnet_key(host.ip, step_size))
                for port in host.open_ports():
                    labels.append(port)
                    value_ids.extend(encode_column(host.ports[port]))
                    value_starts.append(len(value_ids))
                member_starts.append(len(labels))
        self.group_count = len(group_keys)
        sharded = shard_group_columns(assign_keys, group_keys, member_starts,
                                      labels, value_starts, value_ids,
                                      runtime.shard_count)
        try:
            runtime.load_shards(self.key, sharded.shards)
        except BaseException:
            # A partial load must not leak shards into the warm pool for the
            # runtime's whole life: the caller never sees this dataset, so
            # nobody else can release the key.
            runtime.unload(self.key)
            raise

    @classmethod
    def from_snapshot(cls, runtime: EngineRuntime, snapshot: Any,
                      key: Optional[str] = None) -> "ResidentHostGroups":
        """Build the resident dataset from a saved snapshot -- zero-copy.

        The snapshot (:class:`repro.engine.snapshot.Snapshot`, saved with
        sharded host groups) already holds exactly the shard payloads the
        constructor would flatten and ship: workers receive file references
        and ``mmap`` their shards straight from disk
        (:meth:`~repro.engine.runtime.EngineRuntime.load_shards_from_snapshot`),
        so no flatten pass runs and no column bytes cross the worker queues.
        The predictor encoder rebuilds from the snapshot's table in exact id
        order, so resident ``value_ids`` decode identically to a
        freshly-built dataset and every downstream query is bit-identical.

        The runtime's ``shard_count`` must match the snapshot's saved shard
        layout (shard files *are* the placement unit).
        """
        from repro.engine.snapshot import SnapshotError

        layout = snapshot.shard_layout()
        if layout is None:
            raise SnapshotError(
                "snapshot has no sharded host groups; save it with "
                "shard_count/step_size to make it runtime-loadable")
        if layout["shard_count"] != runtime.shard_count:
            raise SnapshotError(
                f"snapshot was sharded for shard_count="
                f"{layout['shard_count']}, but the runtime uses "
                f"shard_count={runtime.shard_count}; re-save the snapshot "
                "or size the runtime to match")
        self = cls.__new__(cls)
        self.runtime = runtime
        self.step_size = layout["step_size"]
        self.key = key if key is not None else f"host-groups-{next(_KEY_COUNTER)}"
        self._sides_model = None
        self._released = False
        self.encoder = DictionaryEncoder()
        for predictor in snapshot.section_meta("host_features")["encoder"]:
            self.encoder.encode(tuple(predictor))
        self.group_count = layout["group_count"]
        try:
            runtime.load_shards_from_snapshot(self.key, snapshot.shard_refs())
        except BaseException:
            runtime.unload(self.key)
            raise
        return self

    # -- lifecycle -----------------------------------------------------------------

    @property
    def recovery_stats(self):
        """The owning runtime's supervision counters (crash-recovery tests
        read these to prove recovery touched only the dead worker's shards)."""
        return self.runtime.recovery_stats

    def release(self) -> None:
        """Drop the resident shards from every worker; idempotent."""
        if self._released:
            return
        self._released = True
        self.runtime.unload(self.key)

    def _check_usable(self) -> None:
        if self._released:
            raise RuntimeError("resident host-group dataset has been released")

    # -- model build (Section 5.2) -------------------------------------------------

    def model_counts(self, column_backend: str = "stdlib",
                     ) -> Tuple[Dict[Any, Dict[int, int]], Dict[Any, int]]:
        """Run the co-occurrence query against the resident shards.

        Returns ``(cooccurrence, denominators)`` with decoded predictor-tuple
        keys, exactly the contents of the
        :class:`~repro.core.model.CooccurrenceModel` the oracle builds.

        With the default ``"stdlib"`` backend the shard-local self-join
        payload is derived (and cached) worker-side, so repeated builds ship
        nothing at all.  With ``column_backend="numpy"`` each worker instead
        folds its resident column buffers through the vectorized kernels
        (:func:`repro.engine.fused.fold_model_pairs_arrays`), returning
        packed ``(keys, counts)`` column pairs that are merged driver-side
        -- same counts, no per-row Python loop, and numpy's GIL-releasing
        sorts let thread workers overlap for real.
        """
        self._check_usable()
        if column_backend == "numpy":
            backend_args = [("numpy",)] * self.runtime.shard_count
            pair_counts = _merge_packed(
                self.runtime.execute("model_pairs", self.key, backend_args))
            denominators = _merge_packed(
                self.runtime.execute("model_denominators", self.key,
                                     backend_args))
        else:
            pair_counts = merge_counters(
                self.runtime.execute("model_pairs", self.key))
            denominators = merge_counters(
                self.runtime.execute("model_denominators", self.key))
        cooccurrence_by_id: Dict[int, Dict[int, int]] = {}
        for packed, count in pair_counts.items():
            predictor_id, port = divmod(packed, MODEL_PACK_BASE)
            targets = cooccurrence_by_id.get(predictor_id)
            if targets is None:
                targets = cooccurrence_by_id[predictor_id] = {}
            targets[port] = count
        decode = self.encoder.decode
        return (
            {decode(predictor_id): targets
             for predictor_id, targets in cooccurrence_by_id.items()},
            {decode(predictor_id): count
             for predictor_id, count in denominators.items()},
        )

    # -- model side tables (shared by priors + prediction index) ---------------------

    def ensure_sides(self, model: Any) -> None:
        """Broadcast the model's score tables to every worker, once per model.

        Per interned predictor id the workers receive the model's count row
        (a reference to the model's own dict -- probabilities divide the
        exact integers the oracle divides), its support, and its rank in
        ascending decoded-tuple order (the argmax tie-break).  A repeated
        call with the same model object ships nothing.
        """
        self._check_usable()
        if self._sides_model is model:
            return
        values = self.encoder.values()
        no_targets: Dict[int, int] = {}
        target_counts: List[Dict[int, int]] = []
        denominators: List[int] = []
        model_denominators = model.denominators
        model_cooccurrence = model.cooccurrence
        for predictor in values:
            denom = model_denominators.get(predictor, 0)
            targets = model_cooccurrence.get(predictor) if denom else None
            if targets:
                target_counts.append(targets)
                denominators.append(denom)
            else:
                # Unknown predictor or zero support: probability 0 for every
                # port; both folds skip empty rows before touching the
                # denominator, so its value is immaterial.
                target_counts.append(no_targets)
                denominators.append(0)
        tie_ranks = [0] * len(values)
        for rank, value_index in enumerate(sorted(range(len(values)),
                                                  key=values.__getitem__)):
            tie_ranks[value_index] = rank
        self.runtime.load_broadcast(self.key, {
            "target_counts": tuple(target_counts),
            "denominators": tuple(denominators),
            "tie_ranks": tuple(tie_ranks),
        })
        self._sides_model = model

    # -- priors planning (Section 5.3) ----------------------------------------------

    def priors_coverage(self, model: Any,
                        port_domain: Optional[Sequence[int]] = None,
                        ) -> Dict[Tuple[int, int], int]:
        """Run the priors partner-selection query against the resident shards.

        Returns the ``(port, subnet) -> coverage`` counts the priors list is
        built from, identical to
        :func:`repro.engine.fused.partner_group_count` over the compiled
        plan.  Only the port whitelist ships per call.
        """
        self._check_usable()
        self.ensure_sides(model)
        allowed: Optional[FrozenSet[int]] = (
            frozenset(port_domain) if port_domain is not None else None)
        counters = self.runtime.execute(
            "priors_partner", self.key,
            [(allowed,)] * self.runtime.shard_count)
        return merge_counters(counters)

    # -- prediction-index build (Section 5.4) ----------------------------------------

    def argmax_winners(self, model: Any,
                       port_domain: Optional[Sequence[int]] = None,
                       min_pattern_support: int = 2,
                       probability_cutoff: float = 1e-5,
                       ) -> List[Tuple[int, Any, float]]:
        """Run the argmax partner-selection query against the resident shards.

        Returns decoded ``(target port, predictor tuple, probability)``
        winners in exact host order -- hash-sharding permutes hosts, so each
        shard's winners come back tagged with their host's original index
        and are merged back before decoding.  Only the whitelist and
        thresholds ship per call.
        """
        self._check_usable()
        self.ensure_sides(model)
        allowed: Optional[FrozenSet[int]] = (
            frozenset(port_domain) if port_domain is not None else None)
        args = (allowed, min_pattern_support, probability_cutoff)
        tagged = self.runtime.execute("index_argmax", self.key,
                                      [args] * self.runtime.shard_count)
        decode = self.encoder.decode
        return [
            (label, decode(value_id), probability)
            for winners in merge_ordered(tagged)
            for label, value_id, probability in winners
        ]
