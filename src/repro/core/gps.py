"""The GPS orchestrator: the four-phase system of Section 5 end to end.

:class:`GPS` ties together the scan pipeline, the feature extraction, the
co-occurrence model, the priors planner and the predictive-feature index into
the four-phase process the paper describes:

1. collect (or accept) a seed set;
2. build the probabilistic model;
3. plan and execute the priors scan, finding at least one service per host;
4. build the predictions list and execute the prediction scan.

Every scan batch appends to a *discovery log* of
``(cumulative probes, newly discovered (ip, port) pairs)`` entries, from which
the analysis layer derives all coverage/precision/bandwidth curves; the
orchestrator itself never looks at the ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.config import GPSConfig
from repro.core.features import extract_host_features, extract_host_features_columns
from repro.core.model import CooccurrenceModel, build_model, build_model_with_engine
from repro.core.predictions import (
    PREDICTION_BATCH_PREFIX_LEN,
    PredictedService,
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
)
from repro.core.priors import (
    PriorsEntry,
    build_priors_plan,
    build_priors_plan_with_engine,
)
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.runtime import EngineRuntime
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline, SeedScanResult
from repro.scanner.records import ObservationBatch, ScanObservation
from repro.telemetry import NULL_TELEMETRY, Telemetry

Pair = Tuple[int, int]


@dataclass(frozen=True)
class DiscoveryBatch:
    """One batch of the discovery log.

    Attributes:
        phase: ``"seed"``, ``"priors"`` or ``"prediction"``.
        cumulative_probes: total probes sent by GPS up to and including this
            batch (across all phases).
        pairs: (ip, port) services newly discovered by this batch.
    """

    phase: str
    cumulative_probes: int
    pairs: Tuple[Pair, ...]


@dataclass
class GPSRunResult:
    """Everything a GPS run produced.

    Attributes:
        config: the configuration the run used.
        seed_observations: the (filtered) seed set GPS learned from.
        priors_observations: services discovered by the priors scan.
        prediction_observations: services discovered by the prediction scan.
        priors_plan: the ordered priors scan list.
        predictions: the ordered predictions list (before probing).
        model: the co-occurrence model built from the seed.
        feature_index: the most-predictive-feature-values index.
        discovery_log: bandwidth-annotated discovery batches.
        model_build_seconds: wall-clock time spent building the model and the
            prediction structures (the "computation" row of Table 2).
        truncated_by_budget: whether the bandwidth budget stopped the run
            before the scan schedule was exhausted.
    """

    config: GPSConfig
    seed_observations: List[ScanObservation]
    priors_observations: List[ScanObservation] = field(default_factory=list)
    prediction_observations: List[ScanObservation] = field(default_factory=list)
    priors_plan: List[PriorsEntry] = field(default_factory=list)
    predictions: List[PredictedService] = field(default_factory=list)
    model: Optional[CooccurrenceModel] = None
    feature_index: Optional[PredictiveFeatureIndex] = None
    discovery_log: List[DiscoveryBatch] = field(default_factory=list)
    model_build_seconds: float = 0.0
    truncated_by_budget: bool = False

    def discovered_pairs(self) -> Set[Pair]:
        """All (ip, port) services GPS discovered, across all phases."""
        pairs: Set[Pair] = set()
        for batch in self.discovery_log:
            pairs.update(batch.pairs)
        return pairs

    def all_observations(self) -> List[ScanObservation]:
        """All observations across phases (seed, priors, prediction)."""
        return (list(self.seed_observations) + list(self.priors_observations)
                + list(self.prediction_observations))

    def log_as_tuples(self) -> List[Tuple[int, Tuple[Pair, ...]]]:
        """Discovery log in the shape :func:`repro.core.metrics.coverage_curve` expects."""
        return [(batch.cumulative_probes, batch.pairs) for batch in self.discovery_log]


class GPS:
    """The GPS system bound to one scan pipeline and one configuration.

    When the configuration names a persistent-runtime executor
    (``GPSConfig.executor`` is ``"serial"``, ``"thread"`` or ``"pool"``), the
    instance owns one :class:`~repro.engine.runtime.EngineRuntime` for its
    whole life: the pool starts lazily on the first engine build, every run
    reuses it, and :meth:`close` (or using the GPS as a context manager)
    tears it down.  Within a run the seed's encoded columns load into the
    workers once and the model, priors and prediction-index builds all fold
    against the resident shards.

    With telemetry enabled (``config.telemetry_enabled``, or an explicit
    ``telemetry`` instance -- e.g. one shared with the scan pipeline so scan
    counters and phase spans land in the same export) every run emits one
    ``gps.run`` span tree whose children are the paper's phases: dataset
    build, feature extraction, and the three Table 2 builds, plus the two
    scan loops and the prediction step.  Instrumentation never alters the
    run itself -- the equivalence tests pin bit-identical outputs with
    telemetry on and off.
    """

    def __init__(self, pipeline: ScanPipeline, config: Optional[GPSConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.pipeline = pipeline
        self.config = config or GPSConfig()
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry_enabled:
            self.telemetry = Telemetry(
                sample_every=self.config.telemetry_sample_every)
        else:
            self.telemetry = NULL_TELEMETRY
        self._asn_db = pipeline.universe.topology.asn_db
        self._runtime: Optional[EngineRuntime] = None

    # -- public API -----------------------------------------------------------------

    def runtime(self) -> Optional[EngineRuntime]:
        """This instance's persistent engine runtime (``None`` for per-call
        executors).  Created lazily from ``config.executor`` /
        ``config.num_workers`` / ``config.shard_count``; recreated if a
        previous one was closed or broken by a worker crash."""
        config = self.config
        if not isinstance(config.executor, str):
            return None
        if self._runtime is None or self._runtime.closed or self._runtime.broken:
            if self._runtime is not None:
                self._runtime.close()
            self._runtime = EngineRuntime(
                executor=config.executor,
                num_workers=config.num_workers,
                shard_count=config.shard_count,
                max_task_retries=config.max_task_retries,
                task_deadline_s=config.task_deadline_s,
                execution_deadline_s=config.execution_deadline_s,
                fault_plan=config.fault_plan,
                telemetry=self.telemetry)
        return self._runtime

    def close(self) -> None:
        """Shut the engine runtime's worker pool down; idempotent."""
        if self._runtime is not None:
            self._runtime.close()

    def __enter__(self) -> "GPS":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, seed: Optional[SeedScanResult] = None,
            seed_cost_probes: Optional[int] = None) -> GPSRunResult:
        """Execute the full four-phase process.

        Args:
            seed: a pre-collected seed set (dataset-split evaluation mode).
                When omitted, GPS collects its own seed scan through the
                pipeline, paying the full random-probing cost.
            seed_cost_probes: bandwidth to charge for a supplied seed set.
                Defaults to ``seed_fraction x |port domain| x address space``,
                the cost of the random scan that would have produced it.
        """
        with self.telemetry.span("gps.run"):
            return self._run(seed, seed_cost_probes)

    def _run(self, seed: Optional[SeedScanResult],
             seed_cost_probes: Optional[int]) -> GPSRunResult:
        config = self.config
        ledger = self.pipeline.ledger
        tel = self.telemetry

        # Phase 1: seed set.
        if seed is None:
            with tel.span("dataset.build") as span:
                seed = self.pipeline.seed_scan(
                    config.seed_fraction,
                    seed=config.seed_scan_seed,
                    ports=list(config.port_domain) if config.port_domain else None,
                )
                span.set("observations", len(seed.observations))
        elif seed_cost_probes is None:
            port_count = (len(config.port_domain) if config.port_domain
                          else 65535)
            seed_cost_probes = int(round(
                config.seed_fraction * port_count
                * self.pipeline.universe.address_space_size()
            ))
        if seed_cost_probes:
            ledger.record(ScanCategory.SEED, probes=seed_cost_probes,
                          responses=len(seed.observations))

        result = GPSRunResult(config=config, seed_observations=list(seed.observations))
        discovered: Set[Pair] = set()
        self._log_batch(result, "seed", ledger.total_probes(),
                        [obs.pair() for obs in seed.observations], discovered)

        budget_probes = self._budget_probes()

        # Phase 2: probabilistic model.
        build_start = time.perf_counter()
        with tel.span("features.extract"):
            host_features = self._extract_features(seed)
        dataset = self._resident_dataset(host_features)
        try:
            with tel.span("model.build") as span:
                model = self._build_model(host_features, dataset)
                span.set("pairs", len(model.cooccurrence))
            result.model = model

            # Phase 3: priors scan (find the first service of every host).
            with tel.span("priors.build") as span:
                priors_plan = self._build_priors_plan(host_features, model, dataset)
                span.set("entries", len(priors_plan))
            result.priors_plan = priors_plan
            result.model_build_seconds += time.perf_counter() - build_start

            with tel.span("priors.scan") as span:
                batches = 0
                for entry in priors_plan:
                    if budget_probes is not None and ledger.total_probes() >= budget_probes:
                        result.truncated_by_budget = True
                        break
                    observations = self.pipeline.scan_prefix(entry.port, entry.subnet,
                                                             category=ScanCategory.PRIORS)
                    result.priors_observations.extend(observations)
                    self._log_batch(result, "priors", ledger.total_probes(),
                                    [obs.pair() for obs in observations], discovered)
                    batches += 1
                span.set("batches", batches)
                span.set("observations", len(result.priors_observations))

            # Phase 4: predict and scan remaining services.
            build_start = time.perf_counter()
            with tel.span("index.build") as span:
                feature_index = self._build_feature_index(host_features, model, dataset)
                span.set("entries", len(feature_index))
            result.feature_index = feature_index
        finally:
            # The resident shards served their three builds; free the worker
            # memory (the runtime itself stays warm for the next run).
            if dataset is not None:
                dataset.release()
        with tel.span("predict") as span:
            predictions = feature_index.predict(
                result.priors_observations, self._asn_db, config.feature_config,
                known_pairs=set(discovered),
            )
            span.set("predictions", len(predictions))
        result.predictions = predictions
        result.model_build_seconds += time.perf_counter() - build_start

        with tel.span("prediction.scan") as span:
            batches = 0
            for start in range(0, len(predictions), config.prediction_batch_size):
                if budget_probes is not None and ledger.total_probes() >= budget_probes:
                    result.truncated_by_budget = True
                    break
                batch = predictions[start:start + config.prediction_batch_size]
                # Probes within the slice are grouped by (subnetwork, port) so the
                # pipeline's batched layers amortize lookups and ledger charges;
                # the probability ordering still governs at slice granularity.
                observations = self.pipeline.scan_pairs(
                    (prediction.pair() for prediction in batch),
                    category=ScanCategory.PREDICTION,
                    batch_prefix_len=PREDICTION_BATCH_PREFIX_LEN,
                )
                result.prediction_observations.extend(observations)
                self._log_batch(result, "prediction", ledger.total_probes(),
                                [obs.pair() for obs in observations], discovered)
                batches += 1
            span.set("batches", batches)
            span.set("observations", len(result.prediction_observations))
        return result

    def predict_for_known_hosts(
        self,
        seed: SeedScanResult,
        known_observations: Sequence[ScanObservation],
        scan: bool = True,
    ) -> GPSRunResult:
        """Predict remaining services for hosts that are already known.

        This is the deployment mode Section 7 describes for IPv6 (and more
        generally for any hitlist): the address space is too large to sweep
        subnetworks, but "given known addresses that respond on at least one
        port, GPS can be used to predict other responsive services on the
        known addresses".  The priors-scan phase is skipped entirely -- the
        supplied ``known_observations`` play its role -- and only the targeted
        prediction scan is executed (or merely planned when ``scan=False``).

        Args:
            seed: the seed set to learn patterns from.
            known_observations: one or more observed services per known host.
            scan: probe the predictions through the pipeline (``True``) or
                only return the ordered predictions list (``False``).
        """
        config = self.config
        ledger = self.pipeline.ledger
        tel = self.telemetry
        result = GPSRunResult(config=config, seed_observations=list(seed.observations))
        discovered: Set[Pair] = set()
        self._log_batch(result, "seed", ledger.total_probes(),
                        [obs.pair() for obs in seed.observations], discovered)

        build_start = time.perf_counter()
        with tel.span("features.extract"):
            host_features = self._extract_features(seed)
        dataset = self._resident_dataset(host_features)
        try:
            with tel.span("model.build"):
                model = self._build_model(host_features, dataset)
            result.model = model

            with tel.span("index.build"):
                feature_index = self._build_feature_index(host_features, model, dataset)
            result.feature_index = feature_index
        finally:
            if dataset is not None:
                dataset.release()

        known = list(known_observations)
        result.priors_observations = known
        known_pairs = set(discovered) | {obs.pair() for obs in known}
        with tel.span("predict") as span:
            predictions = feature_index.predict(known, self._asn_db,
                                                config.feature_config,
                                                known_pairs=known_pairs)
            span.set("predictions", len(predictions))
        result.predictions = predictions
        result.model_build_seconds = time.perf_counter() - build_start

        if not scan:
            return result

        budget_probes = self._budget_probes()
        for start in range(0, len(predictions), config.prediction_batch_size):
            if budget_probes is not None and ledger.total_probes() >= budget_probes:
                result.truncated_by_budget = True
                break
            batch = predictions[start:start + config.prediction_batch_size]
            observations = self.pipeline.scan_pairs(
                (prediction.pair() for prediction in batch),
                category=ScanCategory.PREDICTION,
                batch_prefix_len=PREDICTION_BATCH_PREFIX_LEN,
            )
            result.prediction_observations.extend(observations)
            self._log_batch(result, "prediction", ledger.total_probes(),
                            [obs.pair() for obs in observations], discovered)
        return result

    # -- helpers ------------------------------------------------------------------------

    def _extract_features(self, seed: SeedScanResult):
        """Extract the seed's host features on the configured ingest path.

        The fused engine paths (``use_engine`` with ``engine_mode="fused"``)
        ingest **columnar**: the seed's observation columns (carried by the
        seed when it came from a columnar dataset split, rebuilt from the
        object rows otherwise) fold straight into encoded
        :class:`~repro.core.features.HostFeatureColumns`, which every
        downstream build -- per-call fused, runtime-resident -- consumes
        without an object pre-pass.  The legacy mode and the non-engine
        reference path keep the object extraction, which remains the
        equivalence oracle.
        """
        config = self.config
        if config.use_engine and config.engine_mode == "fused":
            batch = seed.batch
            if batch is None:
                # Rebuild columns in the pipeline's status-id space instead
                # of re-encoding into a fresh one per call.
                batch = ObservationBatch.from_observations(
                    seed.observations,
                    statuses=self.pipeline.status_encoder)
            return extract_host_features_columns(batch, self._asn_db,
                                                 config.feature_config)
        return extract_host_features(seed.observations, self._asn_db,
                                     config.feature_config)

    def _resident_dataset(self, host_features) -> Optional[ResidentHostGroups]:
        """Load the seed's host groups into the runtime's workers, if configured.

        Returns ``None`` unless the configuration routes the fused engine
        through a persistent runtime; otherwise flattens and ships the
        encoded columns once so all three builds of this run fold against
        worker-resident shards.  The caller releases the dataset when the
        builds are done.
        """
        config = self.config
        if not (config.use_engine and config.engine_mode == "fused"):
            return None
        runtime = self.runtime()
        if runtime is None:
            return None
        return ResidentHostGroups(runtime, host_features, config.step_size)

    def _per_call_executor(self):
        """The ExecutorConfig for per-call engine dispatch (None if runtime-based)."""
        executor = self.config.executor
        return None if isinstance(executor, str) else executor

    def _build_model(self, host_features, dataset) -> CooccurrenceModel:
        """Build the Section 5.2 model on the configured execution path.

        ``config.column_backend`` rides along to the engine paths: with
        ``"numpy"`` the fused columnar folds run the vectorized kernels
        (:mod:`repro.engine.columns`); the non-engine reference path is the
        oracle and always stays stdlib.
        """
        config = self.config
        if dataset is not None:
            return build_model_with_engine(host_features, mode=config.engine_mode,
                                           dataset=dataset,
                                           column_backend=config.column_backend)
        if config.use_engine:
            return build_model_with_engine(host_features, self._per_call_executor(),
                                           mode=config.engine_mode,
                                           column_backend=config.column_backend)
        return build_model(host_features)

    def _build_priors_plan(self, host_features, model: CooccurrenceModel, dataset):
        """Build the Section 5.3 priors plan on the configured execution path."""
        config = self.config
        if dataset is not None:
            return build_priors_plan_with_engine(
                host_features, model, config.step_size, config.port_domain,
                mode=config.engine_mode, dataset=dataset)
        if config.use_engine:
            return build_priors_plan_with_engine(
                host_features, model, config.step_size, config.port_domain,
                executor=self._per_call_executor(), mode=config.engine_mode)
        return build_priors_plan(host_features, model, config.step_size,
                                 config.port_domain)

    def _build_feature_index(self, host_features, model: CooccurrenceModel,
                             dataset=None) -> PredictiveFeatureIndex:
        """Build the most-predictive-feature index on the configured path.

        ``use_engine`` routes the Section 5.4 index build through the fused
        argmax engine (``engine_mode`` selects fused/legacy, exactly like the
        model and priors paths); a resident ``dataset`` folds it against the
        runtime's worker-held shards; otherwise the single-core reference
        implementation runs.  All paths produce identical indices.
        """
        config = self.config
        if dataset is not None:
            return build_prediction_index_with_engine(
                host_features, model,
                probability_cutoff=config.probability_cutoff,
                port_domain=config.port_domain,
                min_pattern_support=config.min_pattern_support,
                mode=config.engine_mode,
                dataset=dataset,
            )
        if config.use_engine:
            return build_prediction_index_with_engine(
                host_features, model,
                probability_cutoff=config.probability_cutoff,
                port_domain=config.port_domain,
                min_pattern_support=config.min_pattern_support,
                executor=self._per_call_executor(),
                mode=config.engine_mode,
            )
        return PredictiveFeatureIndex.from_seed(
            host_features, model,
            probability_cutoff=config.probability_cutoff,
            port_domain=config.port_domain,
            min_pattern_support=config.min_pattern_support,
        )

    def _budget_probes(self) -> Optional[int]:
        if self.config.max_full_scans is None:
            return None
        return int(self.config.max_full_scans
                   * self.pipeline.universe.address_space_size())

    @staticmethod
    def _log_batch(result: GPSRunResult, phase: str, cumulative_probes: int,
                   pairs: Sequence[Pair], discovered: Set[Pair]) -> None:
        new_pairs = tuple(pair for pair in pairs if pair not in discovered)
        discovered.update(new_pairs)
        result.discovery_log.append(DiscoveryBatch(
            phase=phase, cumulative_probes=cumulative_probes, pairs=new_pairs
        ))
