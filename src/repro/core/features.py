"""Feature extraction: turning observations into predictor tuples.

GPS models four interactions between feature categories (Section 5.2):

* Expression 4 -- ``P(Port_a | Port_b)``: the bare transport-layer predictor;
* Expression 5 -- ``P(Port_a | (Port_b, App_b))``: the port plus one
  application-layer feature value of the service on that port;
* Expression 6 -- ``P(Port_a | (Port_b, Net))``: the port plus a network-layer
  feature of the host (its ASN or /N subnetwork);
* Expression 7 -- ``P(Port_a | (Port_b, App_b, Net))``: all three.

A *predictor tuple* is the hashable encoding of one conditioning event:

* ``("P",  port_b)``
* ``("PA", port_b, app_key, app_value)``
* ``("PN", port_b, net_kind, net_value)``
* ``("PAN", port_b, app_key, app_value, net_kind, net_value)``

Tuples embed the port, so a tuple observed on a host identifies exactly one of
the host's services; the co-occurrence model counts, for each tuple, how often
each *other* port is open on the same host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FeatureConfig
from repro.net.asn import AsnDatabase
from repro.net.ipv4 import subnet_key
from repro.scanner.records import ScanObservation, observations_by_host

#: Type alias for predictor tuples (kept as plain tuples for hashability and
#: cheap serialization; the first element is the family tag).
PredictorTuple = Tuple


def network_feature_values(ip: int, asn_db: Optional[AsnDatabase],
                           kinds: Sequence[str]) -> List[Tuple[str, int]]:
    """Network-layer feature values of an address.

    Returns ``(kind, value)`` pairs, e.g. ``("asn", 64512)`` or
    ``("subnet16", <subnet key>)``.  An unknown ASN (value 0) is skipped: it
    would otherwise act as a gigantic catch-all "network" shared by every
    unannounced host.
    """
    values: List[Tuple[str, int]] = []
    for kind in kinds:
        if kind == "asn":
            if asn_db is None:
                continue
            asn = asn_db.asn_of(ip)
            if asn:
                values.append(("asn", asn))
        elif kind.startswith("subnet"):
            prefix_len = int(kind[len("subnet"):])
            values.append((kind, subnet_key(ip, prefix_len)))
        else:
            raise ValueError(f"unknown network feature kind: {kind}")
    return values


def predictor_tuples_for_observation(
    observation: ScanObservation,
    net_values: Sequence[Tuple[str, int]],
    config: FeatureConfig,
) -> List[PredictorTuple]:
    """All predictor tuples derivable from one observed service."""
    port = observation.port
    tuples: List[PredictorTuple] = []
    if config.include_transport_only:
        tuples.append(("P", port))

    app_items: List[Tuple[str, str]] = []
    if config.include_app or config.include_app_network:
        for key in config.app_feature_keys:
            value = observation.app_features.get(key)
            if value:
                app_items.append((key, value))

    if config.include_app:
        for key, value in app_items:
            tuples.append(("PA", port, key, value))
    if config.include_network:
        for kind, value in net_values:
            tuples.append(("PN", port, kind, value))
    if config.include_app_network:
        for key, app_value in app_items:
            for kind, net_value in net_values:
                tuples.append(("PAN", port, key, app_value, kind, net_value))
    return tuples


@dataclass
class HostFeatures:
    """Everything GPS knows about one host from a set of observations.

    Attributes:
        ip: host address.
        ports: mapping of open port to the predictor tuples derived from the
            service observed on that port.
        net_values: the host's network-layer feature values.
    """

    ip: int
    ports: Dict[int, List[PredictorTuple]] = field(default_factory=dict)
    net_values: List[Tuple[str, int]] = field(default_factory=list)

    def open_ports(self) -> List[int]:
        """The host's observed open ports, ascending."""
        return sorted(self.ports)


def extract_host_features(
    observations: Iterable[ScanObservation],
    asn_db: Optional[AsnDatabase],
    config: FeatureConfig,
) -> Dict[int, HostFeatures]:
    """Group observations by host and compute predictor tuples for each service.

    This is the feature-extraction step that, in the paper's implementation,
    happens inside BigQuery by selecting banner fields, deriving the subnet
    from the address and joining against an ASN table.
    """
    hosts: Dict[int, HostFeatures] = {}
    for ip, host_observations in observations_by_host(observations).items():
        net_values = network_feature_values(ip, asn_db, config.network_feature_kinds)
        host = HostFeatures(ip=ip, net_values=net_values)
        for observation in host_observations:
            host.ports[observation.port] = predictor_tuples_for_observation(
                observation, net_values, config
            )
        hosts[ip] = host
    return hosts


def describe_predictor(predictor: PredictorTuple) -> str:
    """Human-readable rendering of a predictor tuple (used in reports).

    >>> describe_predictor(("PA", 22, "ssh_banner", "SSH-2.0-x"))
    "(Port 22, ssh_banner='SSH-2.0-x')"
    """
    tag = predictor[0]
    if tag == "P":
        return f"(Port {predictor[1]})"
    if tag == "PA":
        return f"(Port {predictor[1]}, {predictor[2]}={predictor[3]!r})"
    if tag == "PN":
        return f"(Port {predictor[1]}, {predictor[2]}={predictor[3]})"
    if tag == "PAN":
        return (f"(Port {predictor[1]}, {predictor[2]}={predictor[3]!r}, "
                f"{predictor[4]}={predictor[5]})")
    return repr(predictor)


def predictor_family(predictor: PredictorTuple) -> str:
    """The family tag of a predictor tuple ("P", "PA", "PN" or "PAN")."""
    return predictor[0]
