"""Feature extraction: turning observations into predictor tuples.

GPS models four interactions between feature categories (Section 5.2):

* Expression 4 -- ``P(Port_a | Port_b)``: the bare transport-layer predictor;
* Expression 5 -- ``P(Port_a | (Port_b, App_b))``: the port plus one
  application-layer feature value of the service on that port;
* Expression 6 -- ``P(Port_a | (Port_b, Net))``: the port plus a network-layer
  feature of the host (its ASN or /N subnetwork);
* Expression 7 -- ``P(Port_a | (Port_b, App_b, Net))``: all three.

A *predictor tuple* is the hashable encoding of one conditioning event:

* ``("P",  port_b)``
* ``("PA", port_b, app_key, app_value)``
* ``("PN", port_b, net_kind, net_value)``
* ``("PAN", port_b, app_key, app_value, net_kind, net_value)``

Tuples embed the port, so a tuple observed on a host identifies exactly one of
the host's services; the co-occurrence model counts, for each tuple, how often
each *other* port is open on the same host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FeatureConfig
from repro.engine.columns import IntColumn
from repro.engine.encoding import DictionaryEncoder
from repro.net.asn import AsnDatabase
from repro.net.ipv4 import subnet_key
from repro.scanner.records import (
    ObservationBatch,
    ScanObservation,
    observations_by_host,
)

#: Type alias for predictor tuples (kept as plain tuples for hashability and
#: cheap serialization; the first element is the family tag).
PredictorTuple = Tuple


def network_feature_values(ip: int, asn_db: Optional[AsnDatabase],
                           kinds: Sequence[str]) -> List[Tuple[str, int]]:
    """Network-layer feature values of an address.

    Returns ``(kind, value)`` pairs, e.g. ``("asn", 64512)`` or
    ``("subnet16", <subnet key>)``.  An unknown ASN (value 0) is skipped: it
    would otherwise act as a gigantic catch-all "network" shared by every
    unannounced host.
    """
    values: List[Tuple[str, int]] = []
    for kind in kinds:
        if kind == "asn":
            if asn_db is None:
                continue
            asn = asn_db.asn_of(ip)
            if asn:
                values.append(("asn", asn))
        elif kind.startswith("subnet"):
            prefix_len = int(kind[len("subnet"):])
            values.append((kind, subnet_key(ip, prefix_len)))
        else:
            raise ValueError(f"unknown network feature kind: {kind}")
    return values


def _app_items(features, config: FeatureConfig) -> List[Tuple[str, str]]:
    """The (key, value) application-feature pairs present on one service."""
    items: List[Tuple[str, str]] = []
    if config.include_app or config.include_app_network:
        get = features.get
        for key in config.app_feature_keys:
            value = get(key)
            if value:
                items.append((key, value))
    return items


def _predictor_tuples(port: int, app_items: Sequence[Tuple[str, str]],
                      net_values: Sequence[Tuple[str, int]],
                      config: FeatureConfig) -> List[PredictorTuple]:
    """Assemble predictor tuples from pre-extracted parts.

    Shared by the object and columnar extraction paths so the tuples (and
    their order) cannot drift between them: P, then PA, then PN, then PAN.
    """
    tuples: List[PredictorTuple] = []
    if config.include_transport_only:
        tuples.append(("P", port))
    if config.include_app:
        for key, value in app_items:
            tuples.append(("PA", port, key, value))
    if config.include_network:
        for kind, value in net_values:
            tuples.append(("PN", port, kind, value))
    if config.include_app_network:
        for key, app_value in app_items:
            for kind, net_value in net_values:
                tuples.append(("PAN", port, key, app_value, kind, net_value))
    return tuples


def predictor_tuples_for_observation(
    observation: ScanObservation,
    net_values: Sequence[Tuple[str, int]],
    config: FeatureConfig,
) -> List[PredictorTuple]:
    """All predictor tuples derivable from one observed service."""
    return _predictor_tuples(observation.port,
                             _app_items(observation.app_features, config),
                             net_values, config)


@dataclass
class HostFeatures:
    """Everything GPS knows about one host from a set of observations.

    Attributes:
        ip: host address.
        ports: mapping of open port to the predictor tuples derived from the
            service observed on that port.
        net_values: the host's network-layer feature values.
    """

    ip: int
    ports: Dict[int, List[PredictorTuple]] = field(default_factory=dict)
    net_values: List[Tuple[str, int]] = field(default_factory=list)

    def open_ports(self) -> List[int]:
        """The host's observed open ports, ascending."""
        return sorted(self.ports)


def extract_host_features(
    observations: Iterable[ScanObservation],
    asn_db: Optional[AsnDatabase],
    config: FeatureConfig,
) -> Dict[int, HostFeatures]:
    """Group observations by host and compute predictor tuples for each service.

    This is the feature-extraction step that, in the paper's implementation,
    happens inside BigQuery by selecting banner fields, deriving the subnet
    from the address and joining against an ASN table.
    """
    hosts: Dict[int, HostFeatures] = {}
    for ip, host_observations in observations_by_host(observations).items():
        net_values = network_feature_values(ip, asn_db, config.network_feature_kinds)
        host = HostFeatures(ip=ip, net_values=net_values)
        for observation in host_observations:
            host.ports[observation.port] = predictor_tuples_for_observation(
                observation, net_values, config
            )
        hosts[ip] = host
    return hosts


# -- columnar extraction (the fused engine's ingest path) --------------------------------


@dataclass
class HostFeatureColumns:
    """The host/service/predictor relation as flat, pre-encoded columns.

    The columnar twin of the ``Dict[int, HostFeatures]`` mapping: hosts are
    groups in first-seen order, each owning a contiguous run of services
    (ports ascending), each service owning a contiguous run of
    dictionary-encoded predictor-tuple ids.  This is exactly the group
    structure every fused engine consumer flattens host features into --
    producing it directly from :class:`~repro.scanner.records.ObservationBatch`
    columns removes the object pre-pass from the model, priors and
    prediction-index builds (and from
    :class:`~repro.core.runtime_plans.ResidentHostGroups` shard loading).

    Attributes:
        ips: one address per host, in first-seen observation order (the
            order the object extraction iterates hosts in).
        member_starts: host ``g`` owns services
            ``member_starts[g]:member_starts[g + 1]``; length is
            ``len(ips) + 1``.
        ports: per-service port, ascending within each host.
        value_starts: service ``m`` owns predictor ids
            ``value_starts[m]:value_starts[m + 1]``; length is
            ``len(ports) + 1``.
        value_ids: dictionary-encoded predictor-tuple ids.
        encoder: the encoder that decodes ``value_ids`` back to tuples (and
            whose ``values()`` view side tables are built from).

    All five columns are :class:`~repro.engine.columns.IntColumn` buffers:
    the fused kernels and the shard loader read them through the buffer
    protocol (memoryview / numpy view) instead of boxing one Python int per
    element, and ``==`` against the object-path oracle lists still compares
    element-wise.
    """

    ips: IntColumn
    member_starts: IntColumn
    ports: IntColumn
    value_starts: IntColumn
    value_ids: IntColumn
    encoder: DictionaryEncoder

    def __len__(self) -> int:
        return len(self.ips)

    def service_count(self) -> int:
        """Number of (host, port) services in the relation."""
        return len(self.ports)

    def predictors_for(self, group: int) -> Dict[int, List[PredictorTuple]]:
        """Decoded ``port -> predictor tuples`` of one host (oracle view).

        Materializes objects, so it belongs in tests and debugging, not on
        the hot path.
        """
        decode = self.encoder.decode
        out: Dict[int, List[PredictorTuple]] = {}
        for m in range(self.member_starts[group], self.member_starts[group + 1]):
            out[self.ports[m]] = [
                decode(self.value_ids[v])
                for v in range(self.value_starts[m], self.value_starts[m + 1])
            ]
        return out


def extract_host_features_columns(
    batch: ObservationBatch,
    asn_db: Optional[AsnDatabase],
    config: FeatureConfig,
    encoder: Optional[DictionaryEncoder] = None,
) -> HostFeatureColumns:
    """Columnar feature extraction: observation columns in, encoded columns out.

    Produces the relation :func:`extract_host_features` produces -- same
    hosts in the same order, same ports, and per service the same predictor
    tuples in the same order (decoded) -- but folds it straight from the
    batch's flat columns into :class:`HostFeatureColumns`, never building
    ``HostFeatures`` dicts or even touching most banner mappings:

    * application-feature items are extracted **once per interned banner
      id** (equal banner content shares an id, so the 20+-key scan over the
      banner mapping runs once per distinct banner, not once per service);
    * the encoded predictor-id run of a service is memoized per
      ``(port, banner id, network values)`` -- fleets of co-located hosts
      running the same firmware collapse to one tuple-build + encode.

    Duplicate (host, port) rows resolve exactly as the object path resolves
    them: the last observation in batch order wins.
    """
    encoder = encoder if encoder is not None else DictionaryEncoder()
    # Hydrate the machine-native columns to lists once: the grouping loop
    # below touches every element, and per-index array access would box a
    # fresh int per read.
    ips_list = batch.ips.tolist()
    ports_list = batch.ports.tolist()
    banner_list = batch.banner_ids.tolist()
    # Group rows per host in first-seen order; per (host, port) the last row
    # wins (dict assignment), mirroring observations_by_host + dict insert.
    by_host: Dict[int, Dict[int, int]] = {}
    for i, ip in enumerate(ips_list):
        rows = by_host.get(ip)
        if rows is None:
            rows = by_host[ip] = {}
        rows[ports_list[i]] = i

    ips: List[int] = []
    member_starts: List[int] = [0]
    ports: List[int] = []
    value_starts: List[int] = [0]
    value_ids: List[int] = []
    app_items_cache: Dict[int, List[Tuple[str, str]]] = {}
    run_cache: Dict[Tuple[int, int, Tuple[Tuple[str, int], ...]], List[int]] = {}
    kinds = config.network_feature_kinds
    encode_column = encoder.encode_column
    for ip, rows in by_host.items():
        net_values = network_feature_values(ip, asn_db, kinds)
        net_key = tuple(net_values)
        ips.append(ip)
        for port in sorted(rows):
            row = rows[port]
            banner_id = banner_list[row]
            # Batch-local banners (negative ids) are transient one-off pages:
            # memoizing them would key on an id that dies with the batch.
            run_key = (port, banner_id, net_key) if banner_id >= 0 else None
            ids = run_cache.get(run_key) if run_key is not None else None
            if ids is None:
                app_items = (app_items_cache.get(banner_id)
                             if banner_id >= 0 else None)
                if app_items is None:
                    app_items = _app_items(batch.banner_features(row), config)
                    if banner_id >= 0:
                        app_items_cache[banner_id] = app_items
                ids = encode_column(
                    _predictor_tuples(port, app_items, net_values, config))
                if run_key is not None:
                    run_cache[run_key] = ids
            ports.append(port)
            value_ids.extend(ids)
            value_starts.append(len(value_ids))
        member_starts.append(len(ports))
    # Accumulate into plain lists above (cheapest append path), convert to
    # machine-native buffers exactly once here.
    return HostFeatureColumns(ips=IntColumn(ips),
                              member_starts=IntColumn(member_starts),
                              ports=IntColumn(ports),
                              value_starts=IntColumn(value_starts),
                              value_ids=IntColumn(value_ids),
                              encoder=encoder)


def describe_predictor(predictor: PredictorTuple) -> str:
    """Human-readable rendering of a predictor tuple (used in reports).

    >>> describe_predictor(("PA", 22, "ssh_banner", "SSH-2.0-x"))
    "(Port 22, ssh_banner='SSH-2.0-x')"
    """
    tag = predictor[0]
    if tag == "P":
        return f"(Port {predictor[1]})"
    if tag == "PA":
        return f"(Port {predictor[1]}, {predictor[2]}={predictor[3]!r})"
    if tag == "PN":
        return f"(Port {predictor[1]}, {predictor[2]}={predictor[3]})"
    if tag == "PAN":
        return (f"(Port {predictor[1]}, {predictor[2]}={predictor[3]!r}, "
                f"{predictor[4]}={predictor[5]})")
    return repr(predictor)


def predictor_family(predictor: PredictorTuple) -> str:
    """The family tag of a predictor tuple ("P", "PA", "PN" or "PAN")."""
    return predictor[0]
