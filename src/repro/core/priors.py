"""Planning the priors scan: predicting the first service of every host.

Section 5.3: GPS's seed set only covers a small sample of hosts, so before it
can exploit application- and transport-layer correlations it must discover at
least one service on every other responsive host.  Only network-layer
information is available for hosts outside the seed, so GPS exhaustively scans
(port, subnetwork) tuples around seed services, choosing the tuples that cover
the most seed services per unit of bandwidth.

The planning algorithm (verbatim from the paper):

1. hosts that respond on a single port contribute ``(Port_a, Net_IP)``;
2. hosts that respond on several ports contribute, for every service
   ``(IP, Port_a)``, the ``(Port_b, Net_IP)`` of the *other* port whose
   predictor tuples give the maximum ``P(Port_a)``;
3. identical (port, subnetwork) tuples are grouped and weighted by how many
   seed services they help predict (maximal coverage);
4. the list is sorted by coverage, descending.

The output is the "priors scan list": an ordered list of (port, subnetwork of
the scanning step size) pairs that the orchestrator sweeps with the simulated
ZMap.

Two implementations produce that list:

* :func:`build_priors_plan` -- the single-core reference (pure dict loops,
  one :meth:`~repro.core.model.CooccurrenceModel.best_predictor` call per
  ordered port pair), kept as the oracle the equivalence tests compare
  against;
* :func:`build_priors_plan_with_engine` -- the same query compiled onto the
  fused streaming layer (:class:`repro.engine.fused.FusedPartnerPlan`):
  predictor tuples are dictionary-encoded once, probabilities are
  precomputed once per *distinct* predictor, and per-host partner selection
  folds coverage counts inline, optionally scattered across executor
  workers.  This is the Table 2 "computation" story applied to the
  Section 5.3 planning pass; ``GPSConfig.engine_mode`` selects the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import ENGINE_MODES
from repro.core.features import HostFeatureColumns, HostFeatures
from repro.core.model import CooccurrenceModel
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.encoding import DictionaryEncoder
from repro.engine.fused import FusedPartnerPlan, partner_group_count
from repro.engine.parallel import ExecutorConfig, partitioned_partner_group_count
from repro.engine.runtime import EngineRuntime
from repro.net.ipv4 import format_subnet, subnet_key


@dataclass(frozen=True)
class PriorsEntry:
    """One entry of the priors scan list.

    Attributes:
        port: the port to sweep.
        subnet: packed subnet key (base + prefix length) to sweep it over.
        coverage: number of seed services this entry helps predict; the list
            is ordered by this value, descending.
    """

    port: int
    subnet: int
    coverage: int

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``"port 80 over 10.1.0.0/16 (covers 37)"``."""
        return f"port {self.port} over {format_subnet(self.subnet)} (covers {self.coverage})"


def build_priors_plan(
    host_features: Mapping[int, HostFeatures],
    model: CooccurrenceModel,
    step_size: int,
    port_domain: Optional[Sequence[int]] = None,
) -> List[PriorsEntry]:
    """Build the ordered priors scan list from the seed set.

    Args:
        host_features: per-host features extracted from the seed observations.
        model: the co-occurrence model built from the same seed set.
        step_size: scanning step size as a prefix length (0-32).
        port_domain: optional port whitelist; entries whose port falls outside
            it are dropped (used by the Censys-style 2K-port experiments).

    Returns:
        The priors scan list, sorted by coverage (descending) with
        deterministic tie-breaking on (port, subnet).
    """
    if not 0 <= step_size <= 32:
        raise ValueError(f"step_size must be a prefix length 0-32: {step_size}")
    allowed: Optional[Set[int]] = set(port_domain) if port_domain is not None else None

    coverage: Dict[Tuple[int, int], int] = {}

    def add(port: int, ip: int) -> None:
        if allowed is not None and port not in allowed:
            return
        key = (port, subnet_key(ip, step_size))
        coverage[key] = coverage.get(key, 0) + 1

    for host in host_features.values():
        open_ports = host.open_ports()
        if len(open_ports) == 1:
            # Step 1: single-service hosts; the sole service is the one that
            # must be found first (and is the only one that can be).
            add(open_ports[0], host.ip)
            continue
        # Step 2: multi-service hosts; for each target service pick the other
        # port whose predictor tuples are most predictive of it.
        for port_a in open_ports:
            best_port_b: Optional[int] = None
            best_prob = -1.0
            for port_b in open_ports:
                if port_b == port_a:
                    continue
                _, prob = model.best_predictor(host.ports[port_b], port_a)
                if prob > best_prob or (prob == best_prob and best_port_b is not None
                                        and port_b < best_port_b):
                    best_prob = prob
                    best_port_b = port_b
            if best_port_b is None:
                best_port_b = min(port for port in open_ports if port != port_a)
            add(best_port_b, host.ip)

    # Steps 3-4: group, weight by coverage, and order.
    entries = [
        PriorsEntry(port=port, subnet=subnet, coverage=count)
        for (port, subnet), count in coverage.items()
    ]
    entries.sort(key=lambda entry: (-entry.coverage, entry.port, entry.subnet))
    return entries


# -- engine-backed implementation --------------------------------------------------------


def compile_priors_query(
    host_features: Mapping[int, HostFeatures],
    model: CooccurrenceModel,
    step_size: int,
    port_domain: Optional[Sequence[int]] = None,
) -> FusedPartnerPlan:
    """Flatten the priors-planning query into a fused partner plan.

    Hosts become groups (keyed by their ``step_size`` subnet), services become
    members labelled by port, and each service's predictor tuples are
    dictionary-encoded into the plan's flat integer columns.  The model's
    co-occurrence rows and denominators are *referenced* once per distinct
    predictor tuple -- after compilation the per-host partner selection
    operates entirely on small ints and never hashes a nested predictor
    tuple again, which is where the legacy planner spends most of its time.
    Probabilities stay exact: the fold divides the same
    ``count / denominator`` integers the reference implementation divides.

    One- and two-service hosts need no predictor evaluation -- a single
    service is the one that must be found first, and a two-service host's
    partner choice is forced either way -- so when compiling from object
    rows their predictor columns are left empty and they skip encoding
    entirely.  Compiling from pre-encoded
    :class:`~repro.core.features.HostFeatureColumns` reuses the ingest's
    columns verbatim (the fold ignores the values of such hosts
    structurally, so keeping them changes nothing).
    """
    if not 0 <= step_size <= 32:
        raise ValueError(f"step_size must be a prefix length 0-32: {step_size}")
    if isinstance(host_features, HostFeatureColumns):
        encoder = host_features.encoder
        group_keys = [subnet_key(ip, step_size) for ip in host_features.ips]
        member_starts = host_features.member_starts
        labels = host_features.ports
        value_starts = host_features.value_starts
        value_ids = host_features.value_ids
    else:
        encoder = DictionaryEncoder()
        group_keys: List[int] = []
        member_starts: List[int] = [0]
        labels: List[int] = []
        value_starts: List[int] = [0]
        value_ids: List[int] = []
        for host in host_features.values():
            open_ports = host.open_ports()
            group_keys.append(subnet_key(host.ip, step_size))
            if len(open_ports) <= 2:
                for port in open_ports:
                    labels.append(port)
                    value_starts.append(len(value_ids))
            else:
                for port in open_ports:
                    labels.append(port)
                    value_ids.extend(encoder.encode_column(host.ports[port]))
                    value_starts.append(len(value_ids))
            member_starts.append(len(labels))

    model_denominators = model.denominators
    model_cooccurrence = model.cooccurrence
    no_targets: Dict[int, int] = {}
    target_counts: List[Dict[int, int]] = []
    denominators: List[int] = []
    for predictor in encoder.values():
        denom = model_denominators.get(predictor, 0)
        targets = model_cooccurrence.get(predictor) if denom else None
        if targets:
            target_counts.append(targets)
            denominators.append(denom)
        else:
            # Unknown predictor or zero support: probability 0 for every
            # port, exactly as CooccurrenceModel.probability reports it.
            target_counts.append(no_targets)
            denominators.append(1)

    return FusedPartnerPlan(
        group_keys=tuple(group_keys),
        member_starts=tuple(member_starts),
        labels=tuple(labels),
        value_starts=tuple(value_starts),
        value_ids=tuple(value_ids),
        target_counts=tuple(target_counts),
        denominators=tuple(denominators),
        allowed_labels=frozenset(port_domain) if port_domain is not None else None,
    )


def build_priors_plan_with_engine(
    host_features: Mapping[int, HostFeatures],
    model: CooccurrenceModel,
    step_size: int,
    port_domain: Optional[Sequence[int]] = None,
    executor: Optional[ExecutorConfig] = None,
    mode: str = "fused",
    runtime: Optional[EngineRuntime] = None,
    dataset: Optional[ResidentHostGroups] = None,
) -> List[PriorsEntry]:
    """Priors planning on the fused engine (Section 5.3 / Table 2).

    Produces exactly the ordered :class:`PriorsEntry` list of
    :func:`build_priors_plan` (the oracle; the test suite asserts equality
    across serial/thread/process backends), but executes as a streaming pass
    over dictionary-encoded columns: the model's count rows are bound once
    per distinct predictor tuple, per-host partner selection runs on flat
    int columns, and coverage counts fold inline instead of through
    intermediate per-host dicts.  With a parallel ``executor``, contiguous
    host chunks scatter across workers.

    Args:
        host_features: per-host features extracted from the seed observations.
        model: the co-occurrence model built from the same seed set.
        step_size: scanning step size as a prefix length (0-32).
        port_domain: optional port whitelist (Censys-style 2K-port runs).
        executor: parallel engine configuration; ``None`` runs serially.
        mode: ``"fused"`` (default) or ``"legacy"`` (delegates to the
            reference implementation, kept as the benchmark baseline).
        runtime: dispatch the compiled plan's chunks to a persistent
            :class:`~repro.engine.runtime.EngineRuntime` instead of a
            per-call pool.
        dataset: a :class:`~repro.core.runtime_plans.ResidentHostGroups`
            already loaded from the same ``host_features``: the query then
            folds against worker-resident shards, shipping only the model's
            score tables (once) and the port whitelist.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode: {mode!r} (expected one of {ENGINE_MODES})")
    if (dataset is not None or runtime is not None) and mode != "fused":
        raise ValueError("the execution runtime serves only the fused mode")
    if mode == "legacy":
        if isinstance(host_features, HostFeatureColumns):
            raise ValueError("columnar host features serve only the fused mode "
                             "(the legacy oracle ingests object rows)")
        return build_priors_plan(host_features, model, step_size, port_domain)
    if dataset is not None:
        if dataset.step_size != step_size:
            raise ValueError(
                f"resident dataset was flattened for step_size {dataset.step_size}, "
                f"not {step_size}")
        coverage = dataset.priors_coverage(model, port_domain)
    else:
        plan = compile_priors_query(host_features, model, step_size, port_domain)
        serial = (runtime is None and
                  (executor is None
                   or (executor.backend == "serial" and executor.workers == 1)))
        if runtime is not None:
            coverage = partitioned_partner_group_count(plan, runtime=runtime)
        elif serial:
            coverage = partner_group_count(plan)
        else:
            coverage = partitioned_partner_group_count(plan, executor)
    entries = [
        PriorsEntry(port=port, subnet=subnet, coverage=count)
        for (port, subnet), count in coverage.items()
    ]
    entries.sort(key=lambda entry: (-entry.coverage, entry.port, entry.subnet))
    return entries


def plan_bandwidth(entries: Sequence[PriorsEntry], addresses_per_subnet: int) -> int:
    """Total probes a priors plan will send, assuming equal-size subnets.

    Exact accounting happens in the bandwidth ledger during execution; this
    estimate (entries x subnet size) is what a user consults when choosing a
    step size against their bandwidth budget (Equation 3).
    """
    if addresses_per_subnet < 0:
        raise ValueError("addresses_per_subnet must be non-negative")
    return len(entries) * addresses_per_subnet
