"""GPS-as-a-service: the async serving layer on the warm engine runtime.

The paper's prediction index is a *product*, not an experiment artifact:
once built, it answers "what services does this host likely run?" for
pennies.  This package turns the persistent sharded runtime (PRs 4-6) into a
long-lived serving layer with three operations -- point lookup, bulk
prediction and streamed scan jobs -- behind micro-batching, bounded-queue
backpressure and graceful drain.  Layering follows the classic backend
split:

* :mod:`repro.serving.schemas` -- typed requests/replies/errors;
* :mod:`repro.serving.registry` -- named models built once on the warm
  runtime, shards resident until evicted;
* :mod:`repro.serving.service` -- the framework-free asyncio core;
* :mod:`repro.serving.client` -- the in-process async client;
* :mod:`repro.serving.http` -- a thin stdlib JSON/HTTP adapter
  (``gps-repro serve``).
"""

from repro.serving.client import InProcessClient
from repro.serving.registry import ModelRegistry, PreparedModel, build_prepared_model
from repro.serving.schemas import (
    BulkPredict,
    BulkReply,
    InvalidRequest,
    LookupReply,
    ModelInfo,
    ModelNotFound,
    PointLookup,
    RequestTimeout,
    ScanJobFailed,
    ScanJobNotFound,
    ScanJobRequest,
    ScanUpdate,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServingStats,
)
from repro.serving.service import GPSService, ServingConfig

__all__ = [
    "BulkPredict",
    "BulkReply",
    "GPSService",
    "InProcessClient",
    "InvalidRequest",
    "LookupReply",
    "ModelInfo",
    "ModelNotFound",
    "ModelRegistry",
    "PointLookup",
    "PreparedModel",
    "RequestTimeout",
    "ScanJobFailed",
    "ScanJobNotFound",
    "ScanJobRequest",
    "ScanUpdate",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "ServingConfig",
    "ServingStats",
    "build_prepared_model",
]
