"""Typed requests, replies and errors of the GPS serving layer.

The service core (:mod:`repro.serving.service`) speaks plain frozen
dataclasses, never dicts: a request is constructed once by a client (the
in-process async client or the HTTP adapter), validated on construction, and
carried unchanged through the router, the micro-batcher and the worker
threads.  Errors form a small closed hierarchy under :class:`ServiceError` so
callers can catch by failure class (overload vs closed vs timeout) instead of
string-matching messages -- the chaos battery asserts requests under fault
injection fail with exactly these types, never generic exceptions and never
hangs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.predictions import PREDICTION_BATCH_PREFIX_LEN, PredictedService
from repro.scanner.records import ProbeBatch, ScanObservation

Pair = Tuple[int, int]


# -- typed errors ------------------------------------------------------------------------


class ServiceError(Exception):
    """Base class of every error the serving layer raises to a client.

    Attributes:
        code: stable machine-readable identifier (the HTTP adapter maps it
            to a status code; in-process callers can switch on it).
    """

    code = "service_error"
    http_status = 500


class ServiceClosed(ServiceError):
    """The service is draining or closed; no new requests are admitted."""

    code = "service_closed"
    http_status = 503


class ServiceOverloaded(ServiceError):
    """The bounded pending-request queue is full; the request was shed.

    Load shedding is deliberate: an explicit, immediate rejection the client
    can retry against is strictly better than unbounded queue growth that
    eventually takes the whole process down.
    """

    code = "service_overloaded"
    http_status = 429


class ModelNotFound(ServiceError):
    """No model with the requested name is loaded in the registry."""

    code = "model_not_found"
    http_status = 404


class RequestTimeout(ServiceError):
    """The request exceeded the configured per-request deadline."""

    code = "request_timeout"
    http_status = 408


class ScanJobNotFound(ServiceError):
    """No scan job with the requested id exists (or it was already drained)."""

    code = "scan_job_not_found"
    http_status = 404


class ScanJobFailed(ServiceError):
    """A scan job died mid-stream; the message carries the cause."""

    code = "scan_job_failed"
    http_status = 500


class InvalidRequest(ServiceError):
    """A request failed validation before reaching the router."""

    code = "invalid_request"
    http_status = 400


# -- requests ----------------------------------------------------------------------------


@dataclass(frozen=True)
class PointLookup:
    """"What services does IP X likely run?" -- one host's lookup.

    Attributes:
        model: name of the loaded model to predict with.
        observations: the host's known services (the evidence the prediction
            index reads patterns from); all rows must share one address.
        known_pairs: (ip, port) services already known, suppressed from the
            prediction list so clients are not told what they told us.
    """

    model: str
    observations: Tuple[ScanObservation, ...]
    known_pairs: FrozenSet[Pair] = frozenset()

    def __post_init__(self) -> None:
        if not self.observations:
            raise InvalidRequest("a point lookup needs at least one observation")
        ips = {obs.ip for obs in self.observations}
        if len(ips) != 1:
            raise InvalidRequest(
                f"a point lookup targets exactly one address, got {len(ips)}")

    @property
    def ip(self) -> int:
        """The single address every observation of this lookup shares."""
        return self.observations[0].ip


@dataclass(frozen=True)
class BulkPredict:
    """Predict remaining services for many hosts in one request.

    The reply's probe batches are grouped per ``(subnet/prefix_len, port)``
    exactly like the Section 5.4 prediction-scan path, ready for
    :meth:`repro.scanner.pipeline.ScanPipeline.scan_pair_batches`.
    """

    model: str
    observations: Tuple[ScanObservation, ...]
    known_pairs: FrozenSet[Pair] = frozenset()
    prefix_len: int = PREDICTION_BATCH_PREFIX_LEN

    def __post_init__(self) -> None:
        if not self.observations:
            raise InvalidRequest("a bulk prediction needs at least one observation")
        if not 0 <= self.prefix_len <= 32:
            raise InvalidRequest(f"prefix_len must be 0-32: {self.prefix_len}")


@dataclass(frozen=True)
class ScanJobRequest:
    """Submit a prediction scan whose results stream back incrementally.

    Attributes:
        model: name of the loaded model (its pipeline executes the probes).
        observations: discovered services to predict from; empty means "use
            the model's own seed observations".
        known_pairs: pairs never probed (in addition to the model's seed).
        batch_size: predictions probed per streamed update (the granularity
            of the result stream, exactly like ``prediction_batch_size`` in
            the one-shot orchestrator).
        prefix_len: prefix length probes are grouped by inside each update
            (the batched scan-path grouping).
    """

    model: str
    observations: Tuple[ScanObservation, ...] = ()
    known_pairs: FrozenSet[Pair] = frozenset()
    batch_size: int = 2000
    prefix_len: int = PREDICTION_BATCH_PREFIX_LEN

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise InvalidRequest(f"batch_size must be >= 1: {self.batch_size}")
        if not 0 <= self.prefix_len <= 32:
            raise InvalidRequest(f"prefix_len must be 0-32: {self.prefix_len}")


# -- replies -----------------------------------------------------------------------------


@dataclass(frozen=True)
class LookupReply:
    """Reply to a :class:`PointLookup`.

    Attributes:
        model: the model that served the lookup.
        predictions: probability-ordered predicted services, bit-identical
            to ``PredictiveFeatureIndex.predict`` over the same inputs.
        coalesced: how many concurrent lookups shared this request's
            micro-batch flush (1 = the request flushed alone).
    """

    model: str
    predictions: Tuple[PredictedService, ...]
    coalesced: int = 1


@dataclass(frozen=True)
class BulkReply:
    """Reply to a :class:`BulkPredict`.

    Attributes:
        model: the model that served the prediction.
        predictions: probability-ordered predictions across all hosts.
        batches: the same predictions grouped per (subnet, port) probe batch
            in first-seen order -- the scan-path shape.
    """

    model: str
    predictions: Tuple[PredictedService, ...]
    batches: Tuple[ProbeBatch, ...]


@dataclass(frozen=True)
class ScanUpdate:
    """One streamed increment of a scan job.

    Attributes:
        job_id: the job this update belongs to.
        seq: 0-based update index within the job.
        pairs_probed: predictions probed by this increment.
        observations: services the increment discovered.
        cumulative_probes: the pipeline ledger's probe total after the
            increment (bandwidth accounting, the paper's "100% scans" unit
            divides this by address-space size).
        final: whether this is the job's last update.
    """

    job_id: str
    seq: int
    pairs_probed: int
    observations: Tuple[ScanObservation, ...]
    cumulative_probes: int
    final: bool = False


@dataclass(frozen=True)
class ModelInfo:
    """What the registry knows about one loaded model.

    ``source`` tells an operator whether the artifacts were ``"built"`` in
    this process or ``"snapshot"``-loaded (a warm restart); snapshot-loaded
    models also carry the snapshot's format version and the wall-clock time
    the load finished, so a rebuild and a warm restart are distinguishable
    from ``GET /models`` and ``/stats`` alone.
    """

    name: str
    seed_services: int
    hosts: int
    index_entries: int
    priors_entries: int
    build_seconds: float
    resident_shards: bool
    source: str = "built"
    snapshot_version: Optional[int] = None
    loaded_at: Optional[float] = None


@dataclass
class ServingStats:
    """Mutable service counters (snapshot them via :meth:`as_dict`).

    Only ever mutated on the event loop, so no lock is needed; worker
    threads report back through loop callbacks.
    """

    admitted: int = 0
    completed: int = 0
    shed: int = 0
    rejected_closed: int = 0
    lookups: int = 0
    bulk_predictions: int = 0
    scan_jobs: int = 0
    scan_updates: int = 0
    flushes: int = 0
    max_coalesced: int = 0
    timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (what ``/stats`` and tests read)."""
        return dict(vars(self))


__all__ = [
    "BulkPredict",
    "BulkReply",
    "InvalidRequest",
    "LookupReply",
    "ModelInfo",
    "ModelNotFound",
    "PointLookup",
    "RequestTimeout",
    "ScanJobFailed",
    "ScanJobNotFound",
    "ScanJobRequest",
    "ScanUpdate",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "ServingStats",
]
