"""Model registry: named GPS artifacts built once, served many times.

A "model" in serving terms is everything a one-shot GPS run computes before
it starts probing: the extracted host features, the co-occurrence model
(Section 5.2), the priors plan (Section 5.3) and the predictive-feature index
(Section 5.4), bound to the scan pipeline that will execute any scan jobs.
One-shot consumers rebuild all of it per invocation; the registry builds it
once on the service's warm :class:`~repro.engine.runtime.EngineRuntime` --
the encoded seed columns shard into the long-lived workers and *stay*
resident for the model's whole registry life -- and every subsequent request
is a pure read against the finished index.

Build results are bit-identical to the one-shot path by construction: the
registry calls exactly the build functions the :class:`~repro.core.gps.GPS`
orchestrator calls (``build_model_with_engine`` /
``build_priors_plan_with_engine`` / ``build_prediction_index_with_engine``
against a :class:`~repro.core.runtime_plans.ResidentHostGroups`), and the
equivalence battery pins served predictions against the serial one-shot
oracle.

Load/swap/evict semantics: :meth:`ModelRegistry.register` under a name that
is already taken builds the replacement first and swaps atomically, so
readers never observe a half-built model; the displaced model's resident
shards are released from the workers.  :meth:`ModelRegistry.evict` releases
and forgets.  Lookups hold no locks beyond one dict read -- the registry is
read-heavy by design.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import GPSConfig
from repro.core.features import extract_host_features, extract_host_features_columns
from repro.core.model import CooccurrenceModel, build_model, build_model_with_engine
from repro.core.predictions import (
    PredictedService,
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
)
from repro.core.priors import (
    PriorsEntry,
    build_priors_plan,
    build_priors_plan_with_engine,
)
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.runtime import EngineRuntime
from repro.net.asn import AsnDatabase
from repro.scanner.pipeline import ScanPipeline, SeedScanResult
from repro.scanner.records import ObservationBatch, ScanObservation
from repro.serving.schemas import ModelInfo, ModelNotFound

Pair = Tuple[int, int]


@dataclass
class PreparedModel:
    """One named model's artifacts, ready to serve.

    Attributes:
        name: registry name.
        pipeline: the scan pipeline bound to the model's universe (scan jobs
            probe through it and charge its ledger).
        config: the GPS configuration the artifacts were built under.
        seed_observations: the seed services the model learned from.
        model: the co-occurrence model.
        priors_plan: the ordered priors scan list.
        index: the predictive-feature index every lookup reads.
        resident: the seed's encoded columns, resident in the runtime's
            workers (``None`` when the model was built on a per-call path).
        build_seconds: wall-clock cost of acquiring the artifacts -- the
            full build for ``source="built"`` models, the snapshot load for
            ``source="snapshot"`` ones (``BENCH_snapshot.json`` compares the
            two).
        source: ``"built"`` (computed in this process) or ``"snapshot"``
            (loaded from a saved snapshot -- a warm restart).
        snapshot_version: the snapshot's on-disk format version when
            ``source="snapshot"``, else ``None``.
        loaded_at: wall-clock timestamp (``time.time()``) the snapshot load
            finished, else ``None``.
    """

    name: str
    pipeline: ScanPipeline
    config: GPSConfig
    seed_observations: List[ScanObservation]
    model: CooccurrenceModel
    priors_plan: List[PriorsEntry]
    index: PredictiveFeatureIndex
    resident: Optional[ResidentHostGroups]
    build_seconds: float
    source: str = "built"
    snapshot_version: Optional[int] = None
    loaded_at: Optional[float] = None

    def __post_init__(self) -> None:
        self._asn_db: Optional[AsnDatabase] = \
            self.pipeline.universe.topology.asn_db
        self._by_ip: Dict[int, List[ScanObservation]] = {}
        for obs in self.seed_observations:
            self._by_ip.setdefault(obs.ip, []).append(obs)
        self._seed_pairs: Set[Pair] = {obs.pair() for obs in self.seed_observations}
        # Scan jobs mutate the pipeline's ledger; one job at a time per model.
        self.scan_lock = threading.Lock()

    # -- queries (pure reads, safe from any thread) --------------------------------

    def predict(self, observations: Iterable[ScanObservation],
                known_pairs: Optional[Set[Pair]] = None) -> List[PredictedService]:
        """Probability-ordered predictions for the given observations.

        Exactly ``index.predict`` with the model's ASN database and feature
        configuration -- the serial one-shot oracle the equivalence tests
        compare against.
        """
        return self.index.predict(observations, self._asn_db,
                                  self.config.feature_config,
                                  known_pairs=set(known_pairs or ()))

    def known_observations(self, ip: int) -> List[ScanObservation]:
        """The model's seed observations for one address ([] if unknown)."""
        return list(self._by_ip.get(ip, ()))

    def known_pairs_for(self, ip: int) -> Set[Pair]:
        """The (ip, port) seed services of one address."""
        return {obs.pair() for obs in self._by_ip.get(ip, ())}

    def seed_pairs(self) -> Set[Pair]:
        """All (ip, port) services of the model's seed."""
        return set(self._seed_pairs)

    def info(self) -> ModelInfo:
        """The registry-facing summary of this model."""
        return ModelInfo(
            name=self.name,
            seed_services=len(self.seed_observations),
            hosts=len(self._by_ip),
            index_entries=len(self.index),
            priors_entries=len(self.priors_plan),
            build_seconds=self.build_seconds,
            resident_shards=self.resident is not None,
            source=self.source,
            snapshot_version=self.snapshot_version,
            loaded_at=self.loaded_at,
        )

    # -- lifecycle -----------------------------------------------------------------

    def release(self) -> None:
        """Free the worker-resident shards; idempotent."""
        if self.resident is not None:
            self.resident.release()

    @classmethod
    def from_snapshot(
        cls,
        name: str,
        pipeline: ScanPipeline,
        snapshot: object,
        config: Optional[GPSConfig] = None,
        runtime: Optional[EngineRuntime] = None,
    ) -> "PreparedModel":
        """Load a prepared model from a saved snapshot -- the warm restart.

        ``snapshot`` is a snapshot directory path or an already-opened
        :class:`repro.engine.snapshot.Snapshot`.  Every artifact the build
        path would compute rebuilds from the snapshot's columns instead --
        bit-identical to the freshly-built ones by the snapshot round-trip
        invariant -- so a restarted ``gps-repro serve`` answers its first
        lookup without re-running a single build fold.  When a ``runtime``
        is supplied and the snapshot carries sharded host groups, the seed
        relation goes worker-resident zero-copy
        (:meth:`~repro.core.runtime_plans.ResidentHostGroups.from_snapshot`:
        workers ``mmap`` shard files, nothing ships through queues), making
        scan jobs and engine rebuilds as warm as a built model's.

        ``build_seconds`` records the load cost; ``source`` /
        ``snapshot_version`` / ``loaded_at`` mark the provenance surfaced
        by ``GET /models`` and ``/stats``.
        """
        from repro.engine.snapshot import Snapshot, open_snapshot

        config = config or GPSConfig()
        start = time.perf_counter()
        if not isinstance(snapshot, Snapshot):
            snapshot = open_snapshot(str(snapshot))
        seed_observations = snapshot.observation_batch().materialize()
        model = snapshot.model()
        priors_plan = snapshot.priors_plan()
        index = snapshot.prediction_index()
        resident: Optional[ResidentHostGroups] = None
        fused = config.use_engine and config.engine_mode == "fused"
        if runtime is not None and fused and snapshot.shard_layout() is not None:
            resident = ResidentHostGroups.from_snapshot(runtime, snapshot)
        try:
            return cls(
                name=name,
                pipeline=pipeline,
                config=config,
                seed_observations=seed_observations,
                model=model,
                priors_plan=priors_plan,
                index=index,
                resident=resident,
                build_seconds=time.perf_counter() - start,
                source="snapshot",
                snapshot_version=snapshot.version,
                loaded_at=time.time(),
            )
        except BaseException:
            if resident is not None:
                resident.release()
            raise


def build_prepared_model(
    name: str,
    pipeline: ScanPipeline,
    seed: SeedScanResult,
    config: Optional[GPSConfig] = None,
    runtime: Optional[EngineRuntime] = None,
) -> PreparedModel:
    """Build one model's artifacts the way the one-shot orchestrator would.

    Feature extraction, model build, priors planning and the index build
    follow exactly the :class:`~repro.core.gps.GPS` helper logic: fused
    engine configurations ingest columnar and, when a ``runtime`` is
    supplied, fold against worker-resident shards loaded once; legacy /
    non-engine configurations run the single-core reference path (the
    oracle).  Unlike the orchestrator, the resident shards are *not*
    released after the build -- they belong to the registered model and are
    freed on evict/swap.
    """
    config = config or GPSConfig()
    asn_db = pipeline.universe.topology.asn_db
    start = time.perf_counter()

    fused = config.use_engine and config.engine_mode == "fused"
    if fused:
        batch = seed.batch
        if batch is None:
            # Rebuild columns in the pipeline's status-id space instead of
            # re-encoding into a fresh one per prepared model.
            batch = ObservationBatch.from_observations(
                seed.observations, statuses=pipeline.status_encoder)
        host_features = extract_host_features_columns(batch, asn_db,
                                                      config.feature_config)
    else:
        host_features = extract_host_features(seed.observations, asn_db,
                                              config.feature_config)

    resident: Optional[ResidentHostGroups] = None
    if fused and runtime is not None:
        resident = ResidentHostGroups(runtime, host_features, config.step_size)
    try:
        if resident is not None:
            model = build_model_with_engine(host_features, mode=config.engine_mode,
                                            dataset=resident)
            priors_plan = build_priors_plan_with_engine(
                host_features, model, config.step_size, config.port_domain,
                mode=config.engine_mode, dataset=resident)
            index = build_prediction_index_with_engine(
                host_features, model,
                probability_cutoff=config.probability_cutoff,
                port_domain=config.port_domain,
                min_pattern_support=config.min_pattern_support,
                mode=config.engine_mode, dataset=resident)
        elif config.use_engine:
            model = build_model_with_engine(host_features, mode=config.engine_mode)
            priors_plan = build_priors_plan_with_engine(
                host_features, model, config.step_size, config.port_domain,
                mode=config.engine_mode)
            index = build_prediction_index_with_engine(
                host_features, model,
                probability_cutoff=config.probability_cutoff,
                port_domain=config.port_domain,
                min_pattern_support=config.min_pattern_support,
                mode=config.engine_mode)
        else:
            model = build_model(host_features)
            priors_plan = build_priors_plan(host_features, model,
                                            config.step_size, config.port_domain)
            index = PredictiveFeatureIndex.from_seed(
                host_features, model,
                probability_cutoff=config.probability_cutoff,
                port_domain=config.port_domain,
                min_pattern_support=config.min_pattern_support)
    except BaseException:
        # A failed build must not leak its shards into the warm pool for the
        # runtime's whole life: nobody will ever hold this model to release it.
        if resident is not None:
            resident.release()
        raise

    return PreparedModel(
        name=name,
        pipeline=pipeline,
        config=config,
        seed_observations=list(seed.observations),
        model=model,
        priors_plan=priors_plan,
        index=index,
        resident=resident,
        build_seconds=time.perf_counter() - start,
    )


class ModelRegistry:
    """Thread-safe name -> :class:`PreparedModel` table with swap semantics."""

    def __init__(self) -> None:
        self._models: Dict[str, PreparedModel] = {}
        self._lock = threading.Lock()

    def register(self, model: PreparedModel) -> Optional[PreparedModel]:
        """Install a built model under its name; returns the displaced one.

        The displaced model's resident shards are released here -- by the
        time a reader could fetch the name again it already resolves to the
        replacement, so the swap is atomic from the reader's side.
        """
        with self._lock:
            displaced = self._models.get(model.name)
            self._models[model.name] = model
        if displaced is not None:
            displaced.release()
        return displaced

    def get(self, name: str) -> PreparedModel:
        """Resolve a name; raises :class:`ModelNotFound` for unknown names."""
        with self._lock:
            model = self._models.get(name)
        if model is None:
            raise ModelNotFound(f"no model named {name!r} is loaded")
        return model

    def evict(self, name: str) -> None:
        """Release and forget one model; unknown names raise ModelNotFound."""
        with self._lock:
            model = self._models.pop(name, None)
        if model is None:
            raise ModelNotFound(f"no model named {name!r} is loaded")
        model.release()

    def names(self) -> List[str]:
        """The loaded model names, sorted."""
        with self._lock:
            return sorted(self._models)

    def infos(self) -> List[ModelInfo]:
        """Summaries of every loaded model, sorted by name."""
        with self._lock:
            models = sorted(self._models.values(), key=lambda m: m.name)
        return [model.info() for model in models]

    def close(self) -> None:
        """Release every model; idempotent."""
        with self._lock:
            models = list(self._models.values())
            self._models.clear()
        for model in models:
            model.release()


__all__ = [
    "ModelRegistry",
    "PreparedModel",
    "build_prepared_model",
]
