"""In-process async client for :class:`~repro.serving.service.GPSService`.

Tests, benchmarks and embedded consumers need no network: the client is a
thin typed facade over the service's coroutine API, constructing the request
dataclasses so call sites read like RPCs.  It adds nothing else -- no
retries, no hidden buffering -- so anything the equivalence battery proves
about the client holds for the service itself.
"""

from __future__ import annotations

from typing import AsyncIterator, Iterable, Optional, Tuple

from repro.core.config import GPSConfig
from repro.scanner.pipeline import ScanPipeline, SeedScanResult
from repro.scanner.records import ScanObservation
from repro.serving.schemas import (
    BulkPredict,
    BulkReply,
    LookupReply,
    ModelInfo,
    PointLookup,
    ScanJobRequest,
    ScanUpdate,
)
from repro.serving.service import GPSService

Pair = Tuple[int, int]


class InProcessClient:
    """Typed async access to a service living in the same process."""

    def __init__(self, service: GPSService) -> None:
        self.service = service

    # -- model management --------------------------------------------------------------

    async def load_model(self, name: str, pipeline: ScanPipeline,
                         seed: SeedScanResult,
                         gps_config: Optional[GPSConfig] = None) -> ModelInfo:
        """Build and register a named model on the service's warm runtime."""
        return await self.service.load_model(name, pipeline, seed, gps_config)

    async def evict_model(self, name: str) -> None:
        """Drop a named model and free its worker-resident shards."""
        await self.service.evict_model(name)

    def models(self) -> list:
        """Summaries of the loaded models."""
        return self.service.models()

    # -- the three serving operations --------------------------------------------------

    async def lookup(self, model: str,
                     observations: Iterable[ScanObservation],
                     known_pairs: Iterable[Pair] = ()) -> LookupReply:
        """Point lookup: predict one host's remaining services."""
        return await self.service.lookup(PointLookup(
            model=model,
            observations=tuple(observations),
            known_pairs=frozenset(known_pairs)))

    async def lookup_ip(self, model: str, ip: int) -> LookupReply:
        """Point lookup by bare address, evidenced by the model's own seed."""
        return await self.service.lookup_ip(model, ip)

    async def bulk_predict(self, model: str,
                           observations: Iterable[ScanObservation],
                           known_pairs: Iterable[Pair] = (),
                           ) -> BulkReply:
        """Bulk prediction, batched per (subnet, port) like the scan path."""
        return await self.service.bulk_predict(BulkPredict(
            model=model,
            observations=tuple(observations),
            known_pairs=frozenset(known_pairs)))

    async def scan(self, model: str,
                   observations: Iterable[ScanObservation] = (),
                   known_pairs: Iterable[Pair] = (),
                   batch_size: int = 2000,
                   timeout_s: Optional[float] = None,
                   ) -> AsyncIterator[ScanUpdate]:
        """Submit a scan job and stream its updates as they arrive."""
        job_id = await self.service.submit_scan(ScanJobRequest(
            model=model,
            observations=tuple(observations),
            known_pairs=frozenset(known_pairs),
            batch_size=batch_size))
        async for update in self.service.scan_updates(job_id, timeout_s=timeout_s):
            yield update


__all__ = ["InProcessClient"]
