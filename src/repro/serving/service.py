"""The asyncio serving core: one warm runtime, many concurrent callers.

:class:`GPSService` turns the persistent sharded
:class:`~repro.engine.runtime.EngineRuntime` into a long-lived serving layer.
One service owns:

* **one engine runtime** (serial/thread/pool, the PR 4-6 machinery) that
  every model build folds on -- worker processes spawn once and hold each
  loaded model's seed columns resident until the model is evicted; a worker
  crash mid-build heals through the runtime's own supervision without
  corrupting in-flight responses;
* **a model registry** (:mod:`repro.serving.registry`) with load/swap/evict
  of named models;
* **a request router** with per-model micro-batching: concurrent point
  lookups coalesce into one worker-thread flush (flushed when the batch
  reaches ``max_batch`` *or* the oldest waiter has waited
  ``batch_window_s``, whichever first), sharing one executor dispatch and
  one hot net-feature memo instead of paying per-request scheduling;
* **bounded admission**: at most ``max_pending`` requests are in flight;
  request number ``max_pending + 1`` is shed *immediately* with
  :class:`~repro.serving.schemas.ServiceOverloaded` -- the queue never grows
  without bound, so overload degrades into fast typed rejections rather
  than collapse;
* **graceful drain**: :meth:`close` stops admission (typed
  :class:`~repro.serving.schemas.ServiceClosed` for late arrivals), flushes
  every batcher, waits for outstanding requests to complete (bounded by
  ``drain_timeout_s``), then tears down the thread pool, the registry and
  the engine runtime.  Idempotent; double-close is a no-op.

Everything is framework-free: plain asyncio plus a small
``ThreadPoolExecutor`` for the CPU-bound prediction folds (which is why the
index's net-feature memo is lock-protected).  The service is loop-affine --
construct and use it from one running event loop (the in-process client does;
the HTTP adapter hosts a dedicated loop thread).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.config import GPSConfig
from repro.engine.faults import FaultPlan
from repro.engine.runtime import RUNTIME_EXECUTORS, EngineRuntime, RecoveryStats
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline, SeedScanResult
from repro.scanner.records import group_pairs
from repro.serving.registry import ModelRegistry, PreparedModel, build_prepared_model
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.serving.schemas import (
    BulkPredict,
    BulkReply,
    LookupReply,
    ModelInfo,
    PointLookup,
    RequestTimeout,
    ScanJobFailed,
    ScanJobNotFound,
    ScanJobRequest,
    ScanUpdate,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServingStats,
)

_OPEN, _DRAINING, _CLOSED = "open", "draining", "closed"

#: Micro-batch sizes are small integers; powers of two up to max_batch-ish.
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer (validated on construction).

    Attributes:
        max_pending: bound on concurrently admitted requests; the next one
            is shed with :class:`ServiceOverloaded`.
        max_batch: micro-batch size that triggers an immediate flush.
        batch_window_s: longest a coalesced lookup waits for company before
            the batch flushes anyway (the deadline flush).
        request_timeout_s: per-request deadline; ``None`` disables.  Scan
            streams apply it per awaited update.
        drain_timeout_s: how long :meth:`GPSService.close` waits for
            outstanding requests before tearing down regardless.
        lookup_threads: worker threads serving prediction folds.
        telemetry_enabled: build the service with a live
            :class:`~repro.telemetry.Telemetry` (request counters, latency
            histograms, the ``/metrics`` surface).  Off by default; replies
            are bit-identical either way.
        telemetry_sample_every: observe every Nth request latency when
            telemetry is on (counters and gauges are never sampled).
        executor / num_workers / shard_count / max_task_retries /
        task_deadline_s / execution_deadline_s / fault_plan: the engine
            runtime's knobs, passed through verbatim (see
            :class:`~repro.engine.runtime.EngineRuntime`).
    """

    max_pending: int = 256
    max_batch: int = 32
    batch_window_s: float = 0.002
    request_timeout_s: Optional[float] = 30.0
    drain_timeout_s: float = 10.0
    lookup_threads: int = 4
    telemetry_enabled: bool = False
    telemetry_sample_every: int = 1
    executor: str = "serial"
    num_workers: int = 0
    shard_count: int = 0
    max_task_retries: int = 2
    task_deadline_s: Optional[float] = None
    execution_deadline_s: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        for name, value in (("request_timeout_s", self.request_timeout_s),
                            ("task_deadline_s", self.task_deadline_s),
                            ("execution_deadline_s", self.execution_deadline_s)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be non-negative")
        if self.lookup_threads < 1:
            raise ValueError("lookup_threads must be >= 1")
        if self.telemetry_sample_every < 1:
            raise ValueError("telemetry_sample_every must be >= 1")
        if self.executor not in RUNTIME_EXECUTORS:
            raise ValueError(f"unknown executor: {self.executor!r} "
                             f"(expected one of {RUNTIME_EXECUTORS})")
        if self.num_workers < 0 or self.shard_count < 0:
            raise ValueError("num_workers and shard_count must be >= 0")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan or None")


class _MicroBatcher:
    """Coalesces one model's concurrent point lookups into shared flushes.

    Waiters append onto the open batch; the batch flushes when it reaches
    ``max_batch`` or when the *oldest* waiter has waited ``batch_window_s``
    (one timer armed by the first arrival -- later arrivals never extend the
    deadline).  All state is touched from the event loop only.
    """

    def __init__(self, service: "GPSService") -> None:
        self._service = service
        self._items: List[Tuple[PointLookup, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None

    async def submit(self, request: PointLookup) -> LookupReply:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._items.append((request, future))
        config = self._service.config
        # An admitted request can land here *after* close() swept the
        # batchers (wait_for schedules this coroutine as its own task);
        # waiting out the window would deadlock the drain, so a draining
        # service flushes every arrival immediately.
        if len(self._items) >= config.max_batch:
            self.flush("size")
        elif self._service.closed:
            self.flush("drain")
        elif self._timer is None:
            self._timer = loop.call_later(config.batch_window_s, self.flush)
        return await future

    def flush(self, reason: str = "window") -> None:
        """Close the open batch and hand it to a worker thread (loop-side).

        ``reason`` says which trigger fired -- ``"size"`` (the batch filled),
        ``"window"`` (the oldest waiter's deadline, the timer default) or
        ``"drain"`` (close-time sweep) -- and flows into the
        ``serving_flushes_total{reason=...}`` telemetry counter.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._items:
            return
        items, self._items = self._items, []
        self._service._spawn_flush(items, reason)


class GPSService:
    """The long-lived GPS serving core.  See the module docstring."""

    def __init__(self, config: Optional[ServingConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.config = config or ServingConfig()
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry_enabled:
            self.telemetry = Telemetry(
                sample_every=self.config.telemetry_sample_every)
        else:
            self.telemetry = NULL_TELEMETRY
        self.stats = ServingStats()
        self._registry = ModelRegistry()
        self._state = _OPEN
        self._pending = 0
        self._drained: Optional[asyncio.Event] = None
        self._runtime: Optional[EngineRuntime] = None
        self._build_lock: Optional[asyncio.Lock] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._batchers: Dict[str, _MicroBatcher] = {}
        self._jobs: Dict[str, "_ScanJob"] = {}
        self._job_ids = itertools.count()
        self._flush_tasks: Set[asyncio.Task] = set()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.lookup_threads,
            thread_name_prefix="gps-serve")

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the service has stopped admitting requests."""
        return self._state != _OPEN

    def runtime(self) -> EngineRuntime:
        """The service's engine runtime, created lazily on first build.

        Recreated transparently if a previous one was closed or broken past
        recovery, mirroring the orchestrator's own policy.
        """
        if self._runtime is None or self._runtime.closed or self._runtime.broken:
            if self._runtime is not None:
                self._runtime.close()
            config = self.config
            self._runtime = EngineRuntime(
                executor=config.executor,
                num_workers=config.num_workers,
                shard_count=config.shard_count,
                max_task_retries=config.max_task_retries,
                task_deadline_s=config.task_deadline_s,
                execution_deadline_s=config.execution_deadline_s,
                fault_plan=config.fault_plan,
                telemetry=self.telemetry)
        return self._runtime

    async def close(self, drain: bool = True) -> None:
        """Stop admission, drain outstanding requests, tear everything down.

        Late submissions observe a typed :class:`ServiceClosed` immediately.
        With ``drain=True`` (the default) outstanding requests -- including
        open micro-batches, which are flushed right away rather than waiting
        out their window -- run to completion, bounded by
        ``drain_timeout_s``.  Idempotent: every call after the first returns
        once the first teardown is done.
        """
        if self._state == _CLOSED:
            return
        first = self._state == _OPEN
        self._state = _DRAINING
        if first:
            for batcher in self._batchers.values():
                batcher.flush("drain")
        if drain and self._pending > 0:
            self._ensure_loop_state()
            assert self._drained is not None
            try:
                await asyncio.wait_for(self._drained.wait(),
                                       self.config.drain_timeout_s)
            except asyncio.TimeoutError:
                pass
        self._state = _CLOSED
        self._threads.shutdown(wait=drain, cancel_futures=not drain)
        self._registry.close()
        if self._runtime is not None:
            self._runtime.close()

    async def __aenter__(self) -> "GPSService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- model registry ----------------------------------------------------------------

    async def load_model(self, name: str, pipeline: ScanPipeline,
                         seed: SeedScanResult,
                         gps_config: Optional[GPSConfig] = None) -> ModelInfo:
        """Build a model on the warm runtime and register it under ``name``.

        Loading an already-taken name builds the replacement first and swaps
        atomically (readers keep hitting the old model until the new one is
        complete), then releases the displaced model's resident shards.
        Builds are serialized -- the engine runtime executes one dispatch at
        a time -- but lookups against already-loaded models proceed
        concurrently with a build.
        """
        self._ensure_loop_state()
        self._admit()
        t0 = time.perf_counter() if self.telemetry.enabled else None
        try:
            assert self._build_lock is not None
            async with self._build_lock:
                config = gps_config or GPSConfig(use_engine=True)
                runtime = None
                if config.use_engine and config.engine_mode == "fused":
                    runtime = self.runtime()
                loop = asyncio.get_running_loop()
                prepared = await loop.run_in_executor(
                    self._threads, build_prepared_model, name, pipeline, seed,
                    config, runtime)
            self._registry.register(prepared)
            return prepared.info()
        finally:
            self._release()
            if t0 is not None:
                self._observe_request("load_model", time.perf_counter() - t0)

    async def load_model_from_snapshot(self, name: str, pipeline: ScanPipeline,
                                       snapshot_dir: Any,
                                       gps_config: Optional[GPSConfig] = None,
                                       ) -> ModelInfo:
        """Warm-restart a model from an on-disk snapshot directory.

        The Table 2 artifacts deserialize instead of rebuilding, and under
        the fused pool the host-group shards reach workers as mmap file
        references -- zero shard bytes cross the inbox queues.  Everything
        else matches :meth:`load_model`: builds serialize on the build lock,
        the name swaps atomically, and the reply is the registered model's
        :class:`ModelInfo` (``source="snapshot"``).
        """
        self._ensure_loop_state()
        self._admit()
        t0 = time.perf_counter() if self.telemetry.enabled else None
        try:
            assert self._build_lock is not None
            async with self._build_lock:
                config = gps_config or GPSConfig(use_engine=True)
                runtime = None
                if config.use_engine and config.engine_mode == "fused":
                    runtime = self.runtime()
                loop = asyncio.get_running_loop()
                prepared = await loop.run_in_executor(
                    self._threads, PreparedModel.from_snapshot, name, pipeline,
                    snapshot_dir, config, runtime)
            self._registry.register(prepared)
            return prepared.info()
        finally:
            self._release()
            if t0 is not None:
                self._observe_request("load_model_from_snapshot",
                                      time.perf_counter() - t0)

    async def evict_model(self, name: str) -> None:
        """Release a model's resident shards and forget its name."""
        self._ensure_loop_state()
        self._registry.evict(name)

    def models(self) -> List[ModelInfo]:
        """Summaries of every loaded model."""
        return self._registry.infos()

    def model(self, name: str) -> PreparedModel:
        """Resolve one loaded model (raises :class:`ModelNotFound`)."""
        return self._registry.get(name)

    # -- introspection -----------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        """Everything ``/stats`` reports: counters, queues, runtime recovery.

        Extends :meth:`ServingStats.as_dict` with the live pending-admission
        count, the number of lookups currently waiting in open micro-batches,
        and the engine runtime's :class:`RecoveryStats` (zeros before the
        first build creates the runtime).  ``models`` lists every loaded
        model's provenance: built in-process or snapshot-loaded, and when.
        """
        recovery = (self._runtime.recovery_stats if self._runtime is not None
                    else RecoveryStats())
        snapshot: Dict[str, Any] = self.stats.as_dict()
        snapshot["pending"] = self._pending
        snapshot["batch_queue_depth"] = sum(
            len(batcher._items) for batcher in list(self._batchers.values()))
        snapshot["recovery"] = dict(vars(recovery))
        snapshot["models"] = [
            {"name": info.name, "source": info.source,
             "snapshot_version": info.snapshot_version,
             "loaded_at": info.loaded_at}
            for info in self._registry.infos()]
        return snapshot

    # -- point lookups (micro-batched) -------------------------------------------------

    async def lookup(self, request: PointLookup) -> LookupReply:
        """One host's "what services does it likely run?" lookup.

        Coalesces with concurrent lookups against the same model; the reply
        is bit-identical to calling the one-shot
        ``PredictiveFeatureIndex.predict`` with this request's observations
        and known pairs alone.
        """
        self._ensure_loop_state()
        self._check_open()
        self._registry.get(request.model)
        self._admit()
        self.stats.lookups += 1
        t0 = time.perf_counter() if self.telemetry.enabled else None
        try:
            batcher = self._batchers.get(request.model)
            if batcher is None:
                batcher = self._batchers[request.model] = _MicroBatcher(self)
            return await self._await_with_deadline(batcher.submit(request))
        finally:
            self._release()
            if t0 is not None:
                self._observe_request("lookup", time.perf_counter() - t0)

    async def lookup_ip(self, model: str, ip: int) -> LookupReply:
        """Point lookup for an address the model already knows.

        Convenience form (the HTTP adapter's ``GET /lookup``): the evidence
        is the model's own seed observations for ``ip`` and those pairs are
        suppressed from the reply.  Unknown addresses yield an empty reply
        rather than an error -- "we have no evidence" is a valid answer.
        """
        self._ensure_loop_state()
        self._check_open()
        prepared = self._registry.get(model)
        observations = prepared.known_observations(ip)
        if not observations:
            return LookupReply(model=model, predictions=())
        request = PointLookup(model=model,
                              observations=tuple(observations),
                              known_pairs=frozenset(prepared.known_pairs_for(ip)))
        return await self.lookup(request)

    # -- bulk prediction ---------------------------------------------------------------

    async def bulk_predict(self, request: BulkPredict) -> BulkReply:
        """Predict for many hosts at once, grouped like the scan path."""
        self._ensure_loop_state()
        self._check_open()
        self._registry.get(request.model)
        self._admit()
        self.stats.bulk_predictions += 1
        t0 = time.perf_counter() if self.telemetry.enabled else None
        try:
            loop = asyncio.get_running_loop()
            return await self._await_with_deadline(loop.run_in_executor(
                self._threads, self._process_bulk, request))
        finally:
            self._release()
            if t0 is not None:
                self._observe_request("bulk_predict", time.perf_counter() - t0)

    def _process_bulk(self, request: BulkPredict) -> BulkReply:
        """Worker-thread body of a bulk prediction."""
        prepared = self._registry.get(request.model)
        predictions = prepared.predict(request.observations,
                                       known_pairs=set(request.known_pairs))
        batches = group_pairs((p.pair() for p in predictions), request.prefix_len)
        return BulkReply(model=request.model,
                         predictions=tuple(predictions),
                         batches=tuple(batches))

    # -- scan jobs ---------------------------------------------------------------------

    async def submit_scan(self, request: ScanJobRequest) -> str:
        """Start a prediction scan; results stream via :meth:`scan_updates`.

        The job predicts from the request's observations (the model's own
        seed when empty), probes the predictions through the model's
        pipeline in ``batch_size`` increments, and pushes one
        :class:`ScanUpdate` per increment.  Admission capacity is held for
        the job's whole life, so scan jobs participate in backpressure.
        """
        self._ensure_loop_state()
        self._check_open()
        prepared = self._registry.get(request.model)
        self._admit()
        self.stats.scan_jobs += 1
        if self.telemetry.enabled:
            self._observe_request("submit_scan", None)
        job_id = f"scan-{next(self._job_ids)}"
        job = _ScanJob(job_id=job_id, queue=asyncio.Queue())
        self._jobs[job_id] = job
        loop = asyncio.get_running_loop()

        def _finished(_future) -> None:
            self._release()

        # run_in_executor returns an asyncio.Future whose callbacks run on
        # this loop, so the release lands loop-side like every other one.
        future = loop.run_in_executor(self._threads, self._run_scan_job,
                                      loop, job, prepared, request)
        future.add_done_callback(_finished)
        return job_id

    async def scan_updates(self, job_id: str,
                           timeout_s: Optional[float] = None,
                           ) -> AsyncIterator[ScanUpdate]:
        """Stream a scan job's updates until (and including) the final one.

        Each awaited update is bounded by ``timeout_s`` (default: the
        service's ``request_timeout_s``); a stall past the deadline raises
        :class:`RequestTimeout` instead of hanging.  A failed job raises its
        typed error; the job is forgotten once its stream finishes.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise ScanJobNotFound(f"no scan job {job_id!r}")
        deadline = timeout_s if timeout_s is not None \
            else self.config.request_timeout_s
        try:
            while True:
                try:
                    if deadline is None:
                        item = await job.queue.get()
                    else:
                        item = await asyncio.wait_for(job.queue.get(), deadline)
                except asyncio.TimeoutError:
                    self.stats.timeouts += 1
                    if self.telemetry.enabled:
                        self.telemetry.counter(
                            "serving_timeouts_total",
                            "Requests that exceeded their deadline.").inc()
                    raise RequestTimeout(
                        f"scan job {job_id!r} produced no update within "
                        f"{deadline}s") from None
                if isinstance(item, BaseException):
                    if isinstance(item, ServiceError):
                        raise item
                    raise ScanJobFailed(f"scan job {job_id!r} failed: "
                                        f"{item!r}") from item
                self.stats.scan_updates += 1
                yield item
                if item.final:
                    return
        finally:
            self._jobs.pop(job_id, None)

    def _run_scan_job(self, loop: asyncio.AbstractEventLoop, job: "_ScanJob",
                      prepared: PreparedModel, request: ScanJobRequest) -> None:
        """Worker-thread body of a scan job: predict, probe, stream."""

        def push(item) -> None:
            loop.call_soon_threadsafe(job.queue.put_nowait, item)

        try:
            observations = request.observations or tuple(prepared.seed_observations)
            known = prepared.seed_pairs() | set(request.known_pairs)
            predictions = prepared.predict(observations, known_pairs=known)
            with prepared.scan_lock:
                ledger = prepared.pipeline.ledger
                total = len(predictions)
                seq = 0
                for start in range(0, total, request.batch_size):
                    chunk = predictions[start:start + request.batch_size]
                    found = prepared.pipeline.scan_pairs(
                        (p.pair() for p in chunk),
                        category=ScanCategory.PREDICTION,
                        batch_prefix_len=request.prefix_len)
                    push(ScanUpdate(job_id=job.job_id, seq=seq,
                                    pairs_probed=len(chunk),
                                    observations=tuple(found),
                                    cumulative_probes=ledger.total_probes(),
                                    final=start + request.batch_size >= total))
                    seq += 1
                if total == 0:
                    push(ScanUpdate(job_id=job.job_id, seq=0, pairs_probed=0,
                                    observations=(),
                                    cumulative_probes=ledger.total_probes(),
                                    final=True))
        except BaseException as exc:  # streamed to the consumer, typed
            push(exc)

    # -- internals ---------------------------------------------------------------------

    def _observe_request(self, endpoint: str, seconds: Optional[float]) -> None:
        """Count one served request; observe its latency when sampled in.

        ``seconds=None`` counts without a latency observation (scan jobs,
        whose lifetime is the stream's, not the submit call's).
        """
        tel = self.telemetry
        tel.counter("serving_requests_total",
                    "Requests served by endpoint.", endpoint=endpoint).inc()
        if seconds is not None and tel.sampled():
            tel.histogram("serving_request_seconds",
                          "Request latency by endpoint.",
                          endpoint=endpoint).observe(seconds)

    def _ensure_loop_state(self) -> None:
        """Bind loop-affine state (event, lock) to the running loop once."""
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._drained = asyncio.Event()
            self._build_lock = asyncio.Lock()
        elif self._loop is not loop:
            raise RuntimeError("GPSService is bound to a different event loop")

    def _check_open(self) -> None:
        """Typed rejection for requests arriving at a draining/closed service.

        Runs *before* model resolution so late callers see
        :class:`ServiceClosed`, not the :class:`ModelNotFound` of an
        already-emptied registry.
        """
        if self._state != _OPEN:
            self.stats.rejected_closed += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "serving_rejected_total",
                    "Requests rejected because the service was closing.").inc()
            raise ServiceClosed("service is draining or closed")

    def _admit(self) -> None:
        """Admission control: typed rejection beats unbounded queueing."""
        self._check_open()
        if self._pending >= self.config.max_pending:
            self.stats.shed += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "serving_shed_total",
                    "Requests shed by bounded admission.").inc()
            raise ServiceOverloaded(
                f"{self._pending} requests already pending "
                f"(max_pending={self.config.max_pending})")
        self._pending += 1
        self.stats.admitted += 1
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "serving_pending",
                "Requests currently admitted and in flight.").set(self._pending)
        # A stale "drained" signal from an earlier quiet period must not let
        # close() tear down under this request's feet.
        if self._drained is not None:
            self._drained.clear()

    def _release(self) -> None:
        self._pending -= 1
        self.stats.completed += 1
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "serving_pending",
                "Requests currently admitted and in flight.").set(self._pending)
        if self._pending == 0 and self._drained is not None:
            self._drained.set()

    async def _await_with_deadline(self, awaitable):
        """Apply the per-request deadline, converting to the typed error."""
        timeout = self.config.request_timeout_s
        try:
            if timeout is None:
                return await awaitable
            return await asyncio.wait_for(awaitable, timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "serving_timeouts_total",
                    "Requests that exceeded their deadline.").inc()
            raise RequestTimeout(
                f"request exceeded request_timeout_s={timeout}") from None

    def _spawn_flush(self, items: Sequence[Tuple[PointLookup, asyncio.Future]],
                     reason: str = "window") -> None:
        """Run one micro-batch flush as a tracked loop task."""
        assert self._loop is not None
        task = self._loop.create_task(self._run_flush(list(items), reason))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _run_flush(self, items: List[Tuple[PointLookup, asyncio.Future]],
                         reason: str = "window") -> None:
        self.stats.flushes += 1
        self.stats.max_coalesced = max(self.stats.max_coalesced, len(items))
        if self.telemetry.enabled:
            self.telemetry.counter(
                "serving_flushes_total",
                "Micro-batch flushes by trigger.", reason=reason).inc()
            self.telemetry.histogram(
                "serving_batch_size",
                "Lookups coalesced per micro-batch flush.",
                buckets=_BATCH_SIZE_BUCKETS).observe(len(items))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._threads, self._process_lookups, items)
        except BaseException as exc:
            for _, future in items:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(items, results):
            if future.done():
                continue
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)

    def _process_lookups(self, items: Sequence[Tuple[PointLookup, asyncio.Future]],
                         ) -> List[Union[LookupReply, BaseException]]:
        """Worker-thread body of one flush: per-request oracle-identical folds.

        Each request runs its *own* ``predict`` with its own known-pair
        suppression (coalescing shares the thread dispatch and the index's
        hot net-feature memo, never request state), so replies cannot drift
        from the serial one-shot oracle -- two coalesced lookups about the
        same address with different evidence stay independent.
        """
        coalesced = len(items)
        out: List[Union[LookupReply, BaseException]] = []
        for request, _ in items:
            try:
                prepared = self._registry.get(request.model)
                predictions = prepared.predict(
                    request.observations, known_pairs=set(request.known_pairs))
                out.append(LookupReply(model=request.model,
                                       predictions=tuple(predictions),
                                       coalesced=coalesced))
            except BaseException as exc:
                out.append(exc)
        return out


@dataclass
class _ScanJob:
    """Loop-side handle of one streaming scan job."""

    job_id: str
    queue: "asyncio.Queue"


__all__ = [
    "GPSService",
    "ServingConfig",
]
