"""Thin stdlib JSON/HTTP adapter over the asyncio serving core.

No framework: :class:`http.server.ThreadingHTTPServer` handles sockets, the
:class:`ServiceHost` runs the :class:`~repro.serving.service.GPSService` on a
dedicated event-loop thread, and handler threads bridge into it with
``asyncio.run_coroutine_threadsafe``.  The adapter translates JSON to the
typed request dataclasses and typed errors to HTTP status codes -- nothing
else lives here, so everything the in-process test battery proves about the
service holds for the wire.

Endpoints::

    GET  /healthz                      liveness + loaded model names
    GET  /models                       model summaries
    GET  /stats                        service counters, queue depths,
                                       runtime recovery counters
    GET  /metrics                      Prometheus text exposition (0.0.4)
    GET  /lookup?model=NAME&ip=A.B.C.D point lookup by known address
    POST /predict   {"model": ..., "ips": [...]}          bulk prediction
    POST /scan      {"model": ..., "ips": [...], "batch_size": N}
                                       streamed NDJSON scan updates

Addresses are dotted quads or raw integers.  ``/predict`` and ``/scan``
evidence the listed addresses with the model's own seed observations (the
deployment shape Section 7 describes for hitlists); in-process callers can
supply arbitrary observations through the typed client instead.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.net.ipv4 import IPv4Error, format_ip, parse_ip
from repro.serving.schemas import (
    BulkPredict,
    InvalidRequest,
    LookupReply,
    ModelInfo,
    ScanJobRequest,
    ScanUpdate,
    ServiceError,
)
from repro.serving.service import GPSService, ServingConfig


class ServiceHost:
    """Runs one :class:`GPSService` on a dedicated event-loop thread.

    The service core is loop-affine; the host gives synchronous callers
    (HTTP handler threads, the CLI) a bridge: :meth:`call` schedules a
    coroutine on the service loop and blocks for its result.
    """

    def __init__(self, config: Optional[ServingConfig] = None) -> None:
        self.service = GPSService(config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="gps-serve-loop", daemon=True)
        self._thread.start()
        self._closed = False

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def call(self, coro, timeout: Optional[float] = None):
        """Run a service coroutine from any thread, returning its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def close(self) -> None:
        """Drain and close the service, then stop the loop; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.call(self.service.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)


def _parse_address(raw: str) -> int:
    try:
        if raw.isdigit():
            ip = int(raw)
            if not 0 <= ip <= 0xFFFFFFFF:
                raise InvalidRequest(f"address out of range: {raw}")
            return ip
        return parse_ip(raw)
    except IPv4Error as exc:
        raise InvalidRequest(str(exc)) from exc


def _prediction_row(prediction) -> dict:
    return {
        "ip": format_ip(prediction.ip),
        "port": prediction.port,
        "probability": prediction.probability,
        "predictor": list(prediction.predictor),
    }


def _model_row(info: ModelInfo) -> dict:
    return {
        "name": info.name,
        "seed_services": info.seed_services,
        "hosts": info.hosts,
        "index_entries": info.index_entries,
        "priors_entries": info.priors_entries,
        "build_seconds": info.build_seconds,
        "resident_shards": info.resident_shards,
        "source": info.source,
        "snapshot_version": info.snapshot_version,
        "loaded_at": info.loaded_at,
    }


def _lookup_payload(reply: LookupReply) -> dict:
    return {
        "model": reply.model,
        "coalesced": reply.coalesced,
        "predictions": [_prediction_row(p) for p in reply.predictions],
    }


def _update_payload(update: ScanUpdate) -> dict:
    return {
        "job_id": update.job_id,
        "seq": update.seq,
        "pairs_probed": update.pairs_probed,
        "discovered": [
            {"ip": format_ip(obs.ip), "port": obs.port, "protocol": obs.protocol}
            for obs in update.observations
        ],
        "cumulative_probes": update.cumulative_probes,
        "final": update.final,
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes the fixed endpoint table; one instance per request."""

    # Set by make_http_server().
    host: ServiceHost = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------------

    def log_message(self, *_args) -> None:  # silence default stderr chatter
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: Exception) -> None:
        if isinstance(exc, ServiceError):
            self._send_json(exc.http_status,
                            {"error": exc.code, "detail": str(exc)})
        else:
            self._send_json(500, {"error": "internal", "detail": repr(exc)})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            raise InvalidRequest(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise InvalidRequest("request body must be a JSON object")
        return payload

    @staticmethod
    def _addresses_of(payload: dict) -> List[int]:
        raw = payload.get("ips")
        if not isinstance(raw, list) or not raw:
            raise InvalidRequest('"ips" must be a non-empty list')
        return [_parse_address(str(item)) for item in raw]

    # -- GET ---------------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        try:
            if url.path == "/healthz":
                self._send_json(200, {
                    "status": "ok",
                    "models": [info.name for info in self.host.service.models()],
                })
            elif url.path == "/models":
                self._send_json(200, {
                    "models": [_model_row(info)
                               for info in self.host.service.models()],
                })
            elif url.path == "/stats":
                self._send_json(200, self.host.service.stats_snapshot())
            elif url.path == "/metrics":
                self._send_text(
                    200, self.host.service.telemetry.render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8")
            elif url.path == "/lookup":
                params = parse_qs(url.query)
                model = (params.get("model") or ["default"])[0]
                raw_ip = (params.get("ip") or [""])[0]
                if not raw_ip:
                    raise InvalidRequest('missing "ip" query parameter')
                ip = _parse_address(raw_ip)
                reply = self.host.call(self.host.service.lookup_ip(model, ip))
                self._send_json(200, _lookup_payload(reply))
            else:
                self._send_json(404, {"error": "not_found", "detail": url.path})
        except Exception as exc:  # typed errors map to status codes
            self._send_error_payload(exc)

    # -- POST --------------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        try:
            if url.path == "/predict":
                self._handle_predict()
            elif url.path == "/scan":
                self._handle_scan()
            else:
                self._send_json(404, {"error": "not_found", "detail": url.path})
        except Exception as exc:
            self._send_error_payload(exc)

    def _seed_evidence(self, model: str, ips: List[int]):
        prepared = self.host.service.model(model)
        observations = []
        known = set()
        for ip in ips:
            observations.extend(prepared.known_observations(ip))
            known |= prepared.known_pairs_for(ip)
        if not observations:
            raise InvalidRequest(
                "none of the listed addresses are known to the model")
        return observations, known

    def _handle_predict(self) -> None:
        payload = self._read_body()
        model = str(payload.get("model", "default"))
        ips = self._addresses_of(payload)
        observations, known = self._seed_evidence(model, ips)
        reply = self.host.call(self.host.service.bulk_predict(BulkPredict(
            model=model, observations=tuple(observations),
            known_pairs=frozenset(known))))
        self._send_json(200, {
            "model": reply.model,
            "predictions": [_prediction_row(p) for p in reply.predictions],
            "batches": len(reply.batches),
        })

    def _handle_scan(self) -> None:
        payload = self._read_body()
        model = str(payload.get("model", "default"))
        batch_size = int(payload.get("batch_size", 2000))
        observations: Tuple = ()
        known = frozenset()
        if payload.get("ips"):
            rows, known_set = self._seed_evidence(model,
                                                  self._addresses_of(payload))
            observations = tuple(rows)
            known = frozenset(known_set)
        request = ScanJobRequest(model=model, observations=observations,
                                 known_pairs=known, batch_size=batch_size)
        job_id = self.host.call(self.host.service.submit_scan(request))

        # Stream NDJSON: one update object per line, flushed as produced.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

        async def consume() -> List[dict]:
            rows = []
            async for update in self.host.service.scan_updates(job_id):
                rows.append(_update_payload(update))
            return rows

        for row in self.host.call(consume()):
            write_chunk((json.dumps(row) + "\n").encode())
        write_chunk(b"")  # terminating chunk


def make_http_server(host: ServiceHost, address: str = "127.0.0.1",
                     port: int = 0) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server to the service host (port 0 = ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"host": host})
    return ThreadingHTTPServer((address, port), handler)


def serve_forever(host: ServiceHost, address: str = "127.0.0.1",
                  port: int = 8080) -> None:
    """Blocking serve loop for the CLI; Ctrl-C drains and closes."""
    server = make_http_server(host, address, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        host.close()


__all__ = ["ServiceHost", "make_http_server", "serve_forever"]
