#!/usr/bin/env python3
"""Bandwidth-budget planning: choosing GPS's seed and step size.

GPS's objective (Equation 3 of the paper) is to maximise the services found
subject to a bandwidth constraint, and its two user-facing knobs are the seed
size and the scanning step size (Appendices D.1/D.2).  This example plays the
role of an operator with a fixed probe budget who wants to pick the best
configuration: it sweeps both knobs on a ground-truth dataset and prints the
coverage each configuration achieves within the budget.

Run it with:  python examples/bandwidth_budget_planning.py
"""

from __future__ import annotations

from repro.analysis import (
    SMALL_SCALE,
    format_table,
    make_censys_dataset,
    make_universe,
    run_coverage_experiment,
)

BUDGET_FULL_SCANS = 30.0


def coverage_within_budget(points, budget: float) -> tuple[float, float]:
    """Best (fraction, normalized fraction) reachable within a bandwidth budget."""
    best = (0.0, 0.0)
    for point in points:
        if point.full_scans <= budget:
            best = (point.fraction, point.normalized_fraction)
    return best


def main() -> None:
    universe = make_universe(SMALL_SCALE, seed=5)
    dataset = make_censys_dataset(universe, SMALL_SCALE)
    print(f"Dataset: {dataset.name} with {dataset.service_count()} services on "
          f"{len(dataset.port_domain or ())} ports")
    print(f"Budget:  {BUDGET_FULL_SCANS:.0f} '100% scans'\n")

    rows = []
    best_row = None
    for seed_fraction in (0.02, 0.05, 0.08):
        for step_size in (12, 16, 20):
            experiment = run_coverage_experiment(
                universe, dataset, seed_fraction=seed_fraction, step_size=step_size,
            )
            fraction, normalized = coverage_within_budget(
                experiment.gps_points, BUDGET_FULL_SCANS)
            total_bandwidth = experiment.gps_points[-1].full_scans
            rows.append((
                f"{seed_fraction:.0%}",
                f"/{step_size}",
                f"{fraction:.1%}",
                f"{normalized:.1%}",
                f"{total_bandwidth:.1f}",
            ))
            if best_row is None or fraction > best_row[0]:
                best_row = (fraction, seed_fraction, step_size)

    print(format_table(
        ("seed size", "step size", "services found in budget",
         "normalized found in budget", "bandwidth if unconstrained"),
        rows,
        title="Coverage achievable within the bandwidth budget",
    ))

    if best_row is not None:
        _, seed_fraction, step_size = best_row
        print(f"\nRecommended configuration for this budget: "
              f"{seed_fraction:.0%} seed, /{step_size} scanning step size.")
        print("Smaller step sizes raise precision but can miss hosts outside the "
              "scanned subnets; larger seeds find more uncommon-port patterns "
              "but spend more of the budget on random probing (paper Appendix D).")


if __name__ == "__main__":
    main()
