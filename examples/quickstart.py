#!/usr/bin/env python3
"""Quickstart: discover services across all ports with GPS.

This example walks through the full GPS workflow from the paper on a small
synthetic Internet:

1. generate a synthetic IPv4 universe (the stand-in for the real Internet);
2. collect a seed scan through the simulated ZMap/LZR/ZGrab pipeline;
3. let GPS build its conditional-probability model, plan the priors scan and
   predict remaining services;
4. report what it found and how much bandwidth it spent compared to
   exhaustively scanning every port.

Run it with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import GPS, GPSConfig
from repro.core.metrics import fraction_of_services, normalized_fraction_of_services
from repro.internet import UniverseConfig, generate_universe
from repro.internet.topology import TopologyConfig
from repro.scanner import ScanPipeline


def main() -> None:
    # 1. A small synthetic Internet: ~2,500 hosts across 8 autonomous systems.
    universe = generate_universe(UniverseConfig(
        host_count=2500,
        seed=7,
        topology=TopologyConfig(as_count=8, prefixes_per_as=1),
    ))
    print("Synthetic universe:", universe.describe())

    # 2-4. GPS, bound to a scan pipeline over that universe.  The seed scan is
    # collected by GPS itself (5 % of the address space, all 65,535 ports), so
    # the run pays the full bootstrap cost a real deployment would.
    pipeline = ScanPipeline(universe)
    gps = GPS(pipeline, GPSConfig(seed_fraction=0.05, step_size=16))
    result = gps.run()

    ground_truth = set(universe.real_service_pairs())
    found = result.discovered_pairs()
    ledger = pipeline.ledger

    print(f"\nSeed observations:        {len(result.seed_observations)}")
    print(f"Priors scan list entries: {len(result.priors_plan)}")
    print(f"Predicted (ip, port):     {len(result.predictions)}")
    print(f"Services discovered:      {len(found & ground_truth)} "
          f"of {len(ground_truth)} in the universe")
    print(f"Fraction of services:     {fraction_of_services(found, ground_truth):.1%}")
    print(f"Normalized services:      "
          f"{normalized_fraction_of_services(found, ground_truth):.1%}")
    from repro.scanner.bandwidth import ScanCategory
    print(f"\nBandwidth spent:          {ledger.full_scans():.1f} '100% scans' "
          f"(seed scan alone: {ledger.full_scans(ScanCategory.SEED):.1f} -- "
          f"random probing dominates, as in Table 2 of the paper)")
    print(f"Exhaustive all-port scan: {65535:.0f} '100% scans'")
    print(f"Bandwidth saving:         {65535 / max(ledger.full_scans(), 1e-9):.0f}x")
    print(f"Overall scan precision:   {ledger.precision():.2%}")

    print("\nFive most informative priors-scan entries:")
    for entry in result.priors_plan[:5]:
        print("  ", entry.describe())


if __name__ == "__main__":
    main()
