#!/usr/bin/env python3
"""Security sweep: finding exposed services hiding on non-standard ports.

The paper's motivation is that security-critical services increasingly live on
unassigned ports (databases behind port-forwards, telnet on 2323, IoT admin
panels on vendor-specific ports) where popularity-ordered scanning never
looks.  This example plays the role of a security team with a fixed bandwidth
budget: it runs GPS, then reports the exposed-service classes it surfaced --
split into services on their assigned port versus services found on
unexpected ports -- and compares with what a same-budget exhaustive scan of
the most popular ports would have seen.

Run it with:  python examples/security_sweep.py
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Tuple

from repro.analysis import SMALL_SCALE, make_universe
from repro.core import GPS, GPSConfig
from repro.net.ports import PORT_SERVICE_NAMES
from repro.scanner import ScanPipeline

#: Protocols a security review typically flags when exposed to the Internet.
SENSITIVE_PROTOCOLS = {
    "telnet": "remote shells with weak/no auth",
    "mysql": "databases",
    "postgres": "databases",
    "mssql": "databases",
    "redis": "databases",
    "memcached": "caches (amplification + data exposure)",
    "vnc": "remote desktops",
    "ipmi": "server management controllers",
    "smb": "file shares",
    "rtsp": "camera streams",
}

BANDWIDTH_BUDGET_FULL_SCANS = 40.0


def main() -> None:
    universe = make_universe(SMALL_SCALE, seed=21)
    pipeline = ScanPipeline(universe)
    gps = GPS(pipeline, GPSConfig(
        seed_fraction=0.05,
        step_size=16,
        max_full_scans=BANDWIDTH_BUDGET_FULL_SCANS,
    ))
    result = gps.run()

    # Classify every discovered sensitive service by whether it sits on the
    # port IANA assigns to its protocol (the only place a targeted single-port
    # scan would have looked) or on an unexpected port.
    on_assigned: Counter = Counter()
    off_assigned: Counter = Counter()
    examples: Dict[str, Tuple[int, int]] = {}
    for observation in result.all_observations():
        protocol = observation.protocol
        if protocol not in SENSITIVE_PROTOCOLS:
            continue
        assigned_here = PORT_SERVICE_NAMES.get(observation.port, "") == protocol
        if assigned_here:
            on_assigned[protocol] += 1
        else:
            off_assigned[protocol] += 1
            examples.setdefault(protocol, (observation.ip, observation.port))

    print(f"Bandwidth budget: {BANDWIDTH_BUDGET_FULL_SCANS:.0f} '100% scans' "
          f"(spent {pipeline.ledger.full_scans():.1f})")
    print(f"Services discovered: {len(result.discovered_pairs())}\n")
    print(f"{'protocol':<12} {'risk':<42} {'assigned port':>13} {'other ports':>12}")
    for protocol, risk in SENSITIVE_PROTOCOLS.items():
        total = on_assigned[protocol] + off_assigned[protocol]
        if total == 0:
            continue
        print(f"{protocol:<12} {risk:<42} {on_assigned[protocol]:>13} "
              f"{off_assigned[protocol]:>12}")

    hidden = sum(off_assigned.values())
    visible = sum(on_assigned.values())
    total = hidden + visible
    if total:
        print(f"\n{hidden} of {total} sensitive services "
              f"({hidden / total:.0%}) were NOT on their assigned port -- a "
              f"single-port scan of the assigned ports would have missed them.")
    print("\nExample findings on unexpected ports:")
    for protocol, (ip, port) in list(examples.items())[:5]:
        print(f"  {protocol:<10} on port {port:>5} "
              f"(assigned: {'none' if protocol not in PORT_SERVICE_NAMES.values() else 'elsewhere'})"
              f" at host id {ip}")


if __name__ == "__main__":
    main()
