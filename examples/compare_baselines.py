#!/usr/bin/env python3
"""Compare GPS against every baseline the paper evaluates.

On one synthetic ground-truth dataset this example runs:

* GPS (conditional probabilities, Section 5);
* exhaustive probing in the optimal port order (Figure 2's reference);
* the oracle predictor (perfect knowledge);
* the XGBoost-style sequential per-port classifier (Section 6.4);
* the per-port target generation algorithm (Section 2);
* the hybrid recommender (Appendix A);

and prints one line per system: services found, bandwidth spent, and precision
-- the reproduction of the paper's core claim that simple conditional
probabilities beat both brute force and heavier machine learning per unit of
bandwidth.

Run it with:  python examples/compare_baselines.py
"""

from __future__ import annotations

from repro.analysis import (
    SMALL_SCALE,
    format_table,
    make_censys_dataset,
    make_universe,
)
from repro.analysis.scenarios import run_gps_on_dataset
from repro.baselines import (
    TGAConfig,
    XGBoostScanner,
    XGBoostScannerConfig,
    evaluate_recommender,
    evaluate_tga,
    optimal_port_order_curve,
    oracle_curve,
)
from repro.baselines.tga import candidates_budget_from_dataset
from repro.core.metrics import fraction_of_services

SEED_FRACTION = 0.05


def main() -> None:
    universe = make_universe(SMALL_SCALE, seed=9)
    dataset = make_censys_dataset(universe, SMALL_SCALE)
    ground_truth = dataset.pairs()
    space = dataset.address_space_size
    print(f"Dataset: {dataset.service_count()} services on "
          f"{len(dataset.port_domain or ())} ports, "
          f"address space {space} ({space:,} probes per '100% scan')\n")

    rows = []

    # --- GPS -------------------------------------------------------------------
    gps_run, pipeline, split = run_gps_on_dataset(
        universe, dataset, seed_fraction=SEED_FRACTION, step_size=16)
    gps_found = gps_run.discovered_pairs() & ground_truth
    gps_bandwidth = pipeline.ledger.full_scans()
    rows.append(("GPS", f"{len(gps_found)}",
                 f"{fraction_of_services(gps_found, ground_truth):.1%}",
                 f"{gps_bandwidth:.1f}",
                 f"{len(gps_found) / max(1, pipeline.ledger.total_probes()):.5f}"))

    # --- Exhaustive, optimal port order (stopped at GPS's coverage) --------------
    optimal = optimal_port_order_curve(dataset)
    gps_fraction = fraction_of_services(gps_found, ground_truth)
    stopped = next((p for p in optimal if p.fraction >= gps_fraction), optimal[-1])
    rows.append(("Exhaustive (optimal port order)", f"{stopped.found}",
                 f"{stopped.fraction:.1%}", f"{stopped.full_scans:.1f}",
                 f"{stopped.precision:.5f}"))

    # --- Oracle -------------------------------------------------------------------
    oracle = oracle_curve(dataset)[-1]
    rows.append(("Oracle (perfect predictor)", f"{oracle.found}",
                 f"{oracle.fraction:.1%}", f"{oracle.full_scans:.2f}", "1.00000"))

    # --- XGBoost-style sequential scanner ------------------------------------------
    scanner = XGBoostScanner(dataset, XGBoostScannerConfig(max_ports=15))
    xgb_run = scanner.run(split)
    xgb_found = xgb_run.discovered_pairs() & ground_truth
    rows.append(("XGBoost-style sequential scanner", f"{len(xgb_found)}",
                 f"{fraction_of_services(xgb_found, ground_truth):.1%}",
                 f"{xgb_run.total_probes / space:.1f}",
                 f"{len(xgb_found) / max(1, xgb_run.total_probes):.5f}"))

    # --- Target generation algorithm -------------------------------------------------
    tga = evaluate_tga(dataset, TGAConfig(
        candidates_per_port=candidates_budget_from_dataset(dataset)))
    rows.append(("Target generation (Entropy/IP-style)", f"{tga.services_found}",
                 f"{tga.fraction_found:.1%}", f"{tga.probes / space:.2f}",
                 f"{tga.services_found / max(1, tga.probes):.5f}"))

    # --- Hybrid recommender (Appendix A) ----------------------------------------------
    # The paper recommends 100 ports per address out of 65,535 (~0.15 % of the
    # port space); scale the recommendation budget to this dataset's domain so
    # the model cannot trivially cover every port.
    from repro.baselines import RecommenderConfig
    port_domain_size = len(dataset.port_domain or ()) or 65535
    recommendations = max(1, port_domain_size // 10)
    recommender = evaluate_recommender(
        dataset, split.seed_observations, split.test_pairs(),
        RecommenderConfig(recommendations_per_ip=recommendations))
    rows.append(("Hybrid recommender (Appendix A)", f"{recommender.services_found}",
                 f"{recommender.fraction_found:.1%}",
                 f"{recommender.probes / space:.2f}",
                 f"{recommender.services_found / max(1, recommender.probes):.5f}"))

    print(format_table(
        ("system", "services found", "fraction", "bandwidth (100% scans)",
         "precision"),
        rows,
        title=f"All systems, {SEED_FRACTION:.0%} seed, same ground truth",
    ))
    print("\nNotes: the exhaustive row is cut off at GPS's coverage level; the "
          "TGA and recommender rows exclude the cost of acquiring their "
          "training data (see Section 2 of the paper and DESIGN.md).")


if __name__ == "__main__":
    main()
